package eval

import (
	"bytes"
	"context"
	"reflect"
	"regexp"
	"testing"
	"time"

	"tvnep/internal/core"
)

// stripTimes removes the wall-clock fields from progress output so runs can
// be compared; everything else (ordering, values, node counts) must match.
var timeField = regexp.MustCompile(`time=\s*[0-9.]+s`)

func stripTimes(s string) string { return timeField.ReplaceAllString(s, "time=X") }

// zeroRuntimes clears the only nondeterministic Record field.
func zeroRuntimes(recs []Record) []Record {
	out := append([]Record(nil), recs...)
	for i := range out {
		out[i].Runtime = 0
	}
	return out
}

// TestParallelSweepDeterminism is the determinism contract of the worker
// pool: a sweep at ANY worker count must produce exactly the records — same
// values, same order — as the serial sweep, and the progress stream must
// match line for line (modulo wall-clock times). Bit-for-bit reproducibility
// of the solver (simplex pivots, Devex weights, presolve reductions, warm
// starts) is load-bearing here: any worker-count-dependent float would show
// up as a record mismatch.
func TestParallelSweepDeterminism(t *testing.T) {
	// cΣ only: the Σ-Model is ~50× slower under the race detector and adds
	// no pool coverage (ordering is exercised per scenario either way).
	forms := []core.Formulation{core.CSigma}
	run := func(workers int) ([]Record, []Record, string) {
		cfg := micro()
		// The branch-and-bound is deterministic as long as no solve hits its
		// wall-clock limit, so give it one no micro instance can reach (the
		// race detector slows solves ~10×; a tight limit would make Optimal
		// itself timing-dependent).
		cfg.Solve.TimeLimit = time.Hour
		cfg.Solve.Workers = workers
		var buf bytes.Buffer
		ac := cfg.AccessControlSweep(context.Background(), forms, &buf)
		gr := cfg.GreedySweep(context.Background(), nil)
		return zeroRuntimes(ac), zeroRuntimes(gr), stripTimes(buf.String())
	}
	acSerial, grSerial, logSerial := run(1)
	// 2 and 3 exercise partial pools (oversubscribed queue, uneven stealing);
	// 4 and 7 exceed the micro scenario count, so some workers sit idle.
	for _, workers := range []int{2, 3, 4, 7} {
		acPar, grPar, logPar := run(workers)
		if !reflect.DeepEqual(acSerial, acPar) {
			t.Fatalf("access-control records differ between 1 and %d workers:\nserial: %+v\nparallel: %+v", workers, acSerial, acPar)
		}
		if !reflect.DeepEqual(grSerial, grPar) {
			t.Fatalf("greedy records differ between 1 and %d workers:\nserial: %+v\nparallel: %+v", workers, grSerial, grPar)
		}
		if logSerial != logPar {
			t.Fatalf("progress output differs between 1 and %d workers:\nserial:\n%s\nparallel:\n%s", workers, logSerial, logPar)
		}
	}
}

// TestRunOrderedEmitsInOrder drives the pool with out-of-order completion
// (earlier items sleep longer) and verifies emission stays sequential.
func TestRunOrderedEmitsInOrder(t *testing.T) {
	const n = 40
	var got []int
	runOrdered(context.Background(), 8, n,
		func(_ context.Context, i int) int {
			time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
			return i * i
		},
		func(i, v int) {
			if v != i*i {
				t.Errorf("item %d: got %d, want %d", i, v, i*i)
			}
			got = append(got, i)
		})
	for i, v := range got {
		if v != i {
			t.Fatalf("emission order %v not sequential", got)
		}
	}
	if len(got) != n {
		t.Fatalf("emitted %d items, want %d", len(got), n)
	}
}

// TestCountersAccumulate checks the aggregate observability layer under a
// parallel sweep.
func TestCountersAccumulate(t *testing.T) {
	cfg := micro()
	cfg.Solve.Workers = 4
	cfg.Counters = &Counters{}
	recs := cfg.AccessControlSweep(context.Background(), []core.Formulation{core.CSigma}, nil)
	if got, want := cfg.Counters.Solves.Load(), int64(len(recs)); got != want {
		t.Fatalf("counted %d solves, want %d", got, want)
	}
	if got := cfg.Counters.Optimal.Load(); got != cfg.Counters.Solves.Load() {
		t.Fatalf("micro sweep should solve everything to optimality: %v", cfg.Counters)
	}
	if cfg.Counters.LPIters.Load() <= 0 {
		t.Fatalf("no LP iterations recorded: %v", cfg.Counters)
	}
	if cfg.Counters.String() == "" {
		t.Fatal("empty counters summary")
	}
}

// TestSweepCancellation cancels a sweep up front: it must return promptly
// and count every attempted solve as cancelled rather than optimal.
func TestSweepCancellation(t *testing.T) {
	cfg := micro()
	cfg.Solve.Workers = 2
	cfg.Counters = &Counters{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	recs := cfg.AccessControlSweep(ctx, []core.Formulation{core.CSigma}, nil)
	if len(recs) != len(cfg.pairs()) {
		t.Fatalf("%d records, want one per scenario (%d)", len(recs), len(cfg.pairs()))
	}
	for _, r := range recs {
		if r.Optimal {
			t.Fatalf("flex=%v seed=%d reported optimal under a cancelled context", r.FlexMin, r.Seed)
		}
	}
	if got := cfg.Counters.Cancelled.Load(); got != cfg.Counters.Solves.Load() {
		t.Fatalf("cancelled %d of %d solves, want all: %v", got, cfg.Counters.Solves.Load(), cfg.Counters)
	}
}
