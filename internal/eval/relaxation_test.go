package eval

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"tvnep/internal/core"
	"tvnep/internal/model"
	"tvnep/internal/workload"
)

func TestRelaxationSweepOrdering(t *testing.T) {
	wl := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 3, StarLeaves: 1,
		DemandLow: 0.5, DemandHigh: 1.5,
		MeanInterArr: 1, WeibullShape: 2, WeibullScale: 2,
	}
	cfg := Config{
		Workload:    wl,
		FlexMinutes: []float64{0, 120},
		Seeds:       []int64{1, 2, 3},
		Solve:       model.SolveOptions{TimeLimit: 30 * time.Second},
	}
	recs := cfg.RelaxationSweep(context.Background(), nil)
	if len(recs) != 2*3*3 {
		t.Fatalf("%d records, want 18", len(recs))
	}
	// Per scenario: Δ bound ≥ Σ bound (Section III-C proves dominance) and
	// every relaxation upper-bounds the exact optimum.
	byKey := map[[2]int64]map[core.Formulation]RelaxationRecord{}
	for _, r := range recs {
		k := [2]int64{int64(r.FlexMin), r.Seed}
		if byKey[k] == nil {
			byKey[k] = map[core.Formulation]RelaxationRecord{}
		}
		byKey[k][r.Form] = r
	}
	for k, group := range byKey {
		d, s, c := group[core.Delta], group[core.Sigma], group[core.CSigma]
		if math.IsNaN(d.Bound) || math.IsNaN(s.Bound) || math.IsNaN(c.Bound) {
			t.Fatalf("%v: relaxation unsolved", k)
		}
		if s.Bound > d.Bound+1e-5 {
			t.Fatalf("%v: Σ bound %v exceeds Δ bound %v (Σ must dominate)", k, s.Bound, d.Bound)
		}
		if !math.IsNaN(c.Exact) {
			for _, r := range []RelaxationRecord{d, s, c} {
				if r.Bound < c.Exact-1e-5 {
					t.Fatalf("%v: %v relaxation %v below the integer optimum %v", k, r.Form, r.Bound, c.Exact)
				}
			}
		}
	}

	var buf bytes.Buffer
	WriteRelaxation(&buf, recs, cfg)
	if !strings.Contains(buf.String(), "Relaxation strength") {
		t.Fatal("report header missing")
	}
}
