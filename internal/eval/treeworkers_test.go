package eval

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"tvnep/internal/certify"
	"tvnep/internal/core"
	"tvnep/internal/model"
)

// TestTreeWorkerDeterminism is the end-to-end determinism contract of the
// parallel branch-and-bound on the paper's own models: for every
// formulation (Δ, Σ, cΣ) on workload-generator scenarios, the solve with
// 2/4/8 tree workers must commit the bit-identical search of the serial
// solve — same status, objective and bound bits, node and LP iteration
// counts — and extract the same certified embedding.
func TestTreeWorkerDeterminism(t *testing.T) {
	cfg := micro()
	type scen struct {
		flex float64
		seed int64
	}
	scens := []scen{{120, 1}, {60, 2}}
	if testing.Short() {
		scens = scens[:1]
	}
	// cΣ runs twice: with static Constraint-(20) emission and with the lazy
	// separation pipeline, whose committer-side cut rounds must preserve the
	// bit-identical-across-workers contract.
	type variant struct {
		form    core.Formulation
		cutMode core.CutMode
	}
	variants := []variant{
		{core.Delta, core.CutStatic},
		{core.Sigma, core.CutStatic},
		{core.CSigma, core.CutStatic},
		{core.CSigma, core.CutLazy},
	}
	for _, v := range variants {
		form := v.form
		for _, sc := range scens {
			inst, mapping := cfg.scenario(sc.flex, sc.seed)
			var base *model.Solution
			var baseSol interface{}
			for _, w := range []int{1, 2, 4, 8} {
				b := core.Build(form, inst, core.BuildOptions{
					Objective:    core.AccessControl,
					FixedMapping: mapping,
					CutMode:      v.cutMode,
				})
				opts := model.SolveOptions{TimeLimit: time.Hour, Workers: w}
				sol, ms := b.Solve(context.Background(), &opts)
				if ms.Status != model.StatusOptimal {
					t.Fatalf("%v flex=%v seed=%d workers=%d: status %v",
						form, sc.flex, sc.seed, w, ms.Status)
				}
				if sol == nil {
					t.Fatalf("%v flex=%v seed=%d workers=%d: no solution", form, sc.flex, sc.seed, w)
				}
				rep := certify.Solution(inst, sol, certify.Options{
					Objective: core.AccessControl, Mapping: mapping,
				})
				if err := rep.Err(); err != nil {
					t.Fatalf("%v flex=%v seed=%d workers=%d: certificate: %v",
						form, sc.flex, sc.seed, w, err)
				}
				if err := certify.Cuts(b, ms).Err(); err != nil {
					t.Fatalf("%v flex=%v seed=%d workers=%d: cut certificate: %v",
						form, sc.flex, sc.seed, w, err)
				}
				// Runtime is the only field allowed to vary between counts.
				sol.Runtime = 0
				if w == 1 {
					base, baseSol = ms, sol
					continue
				}
				if math.Float64bits(ms.Obj) != math.Float64bits(base.Obj) ||
					math.Float64bits(ms.Bound) != math.Float64bits(base.Bound) {
					t.Errorf("%v flex=%v seed=%d: objective/bound not bit-identical at %d workers: %v/%v vs %v/%v",
						form, sc.flex, sc.seed, w, ms.Obj, ms.Bound, base.Obj, base.Bound)
				}
				if ms.Nodes != base.Nodes || ms.LPIterations != base.LPIterations {
					t.Errorf("%v flex=%v seed=%d: search shape differs at %d workers: %d nodes/%d iters vs %d/%d",
						form, sc.flex, sc.seed, w, ms.Nodes, ms.LPIterations, base.Nodes, base.LPIterations)
				}
				if ms.Cuts != base.Cuts {
					t.Errorf("%v flex=%v seed=%d: cut stats differ at %d workers: %+v vs %+v",
						form, sc.flex, sc.seed, w, ms.Cuts, base.Cuts)
				}
				if !reflect.DeepEqual(ms.AppliedCuts, base.AppliedCuts) {
					t.Errorf("%v flex=%v seed=%d: applied cuts differ at %d workers",
						form, sc.flex, sc.seed, w)
				}
				if !reflect.DeepEqual(sol, baseSol) {
					t.Errorf("%v flex=%v seed=%d: extracted solution differs at %d workers",
						form, sc.flex, sc.seed, w)
				}
			}
		}
	}
}
