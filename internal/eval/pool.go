package eval

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Counters aggregates solver activity across a sweep. All fields are
// atomic, so a single Counters value can be shared by every worker of a
// parallel sweep (and by several sweeps run back to back).
type Counters struct {
	Solves    atomic.Int64 // MIP solves started
	Optimal   atomic.Int64 // solves finished with a proven optimum
	Cancelled atomic.Int64 // solves stopped by context cancellation
	Nodes     atomic.Int64 // branch-and-bound nodes across all solves
	LPIters   atomic.Int64 // simplex iterations across all solves
	// Long-step dual ratio-test activity across all solves: nonbasic
	// bound flips absorbed without a pivot, and breakpoints walked.
	BoundFlips  atomic.Int64
	RatioPasses atomic.Int64

	// Certification verdicts (populated when Config.Certify is set).
	Certified     atomic.Int64 // solutions run through internal/certify
	CertifyFailed atomic.Int64 // certificates with at least one violation

	// Lazy-cut separation activity (populated from mip.CutStats; the
	// non-root fields stay zero unless solves run with Config.CutMode ==
	// core.CutLazy).
	CutRowsRoot      atomic.Int64 // LP rows present at the root across solves
	CutRowsSeparated atomic.Int64 // rows appended by separation
	CutRounds        atomic.Int64 // separation rounds that added at least one row
	CutOffered       atomic.Int64 // candidate rows offered to the cut pool
	CutPoolHits      atomic.Int64 // offers deduplicated against pooled rows
}

// String renders a one-line summary.
func (c *Counters) String() string {
	s := fmt.Sprintf("solves=%d optimal=%d cancelled=%d nodes=%d lp_iters=%d",
		c.Solves.Load(), c.Optimal.Load(), c.Cancelled.Load(), c.Nodes.Load(), c.LPIters.Load())
	if c.BoundFlips.Load() > 0 || c.RatioPasses.Load() > 0 {
		s += fmt.Sprintf(" bound_flips=%d ratio_passes=%d", c.BoundFlips.Load(), c.RatioPasses.Load())
	}
	if n := c.Certified.Load(); n > 0 {
		s += fmt.Sprintf(" certified=%d certify_failed=%d", n, c.CertifyFailed.Load())
	}
	if c.CutOffered.Load() > 0 || c.CutRowsSeparated.Load() > 0 || c.CutRounds.Load() > 0 {
		s += fmt.Sprintf(" cut_rows_root=%d cut_rows_separated=%d cut_rounds=%d cut_offered=%d cut_pool_hits=%d",
			c.CutRowsRoot.Load(), c.CutRowsSeparated.Load(), c.CutRounds.Load(),
			c.CutOffered.Load(), c.CutPoolHits.Load())
	}
	return s
}

// runOrdered distributes n independent work items over w workers and hands
// every result to emit in item order, regardless of completion order. This
// is the determinism contract of the parallel sweeps: records (and progress
// lines) appear exactly as a serial run would produce them, because emit is
// only ever called from the calling goroutine, sequentially, for item 0,
// 1, 2, …. Workers communicate results through a per-item slot guarded by
// a per-item done channel, so no locks are needed and `go test -race`
// stays quiet.
//
// w ≤ 0 selects runtime.NumCPU(); w == 1 degenerates to a plain loop.
func runOrdered[T any](ctx context.Context, w, n int, run func(context.Context, int) T, emit func(int, T)) {
	if w <= 0 {
		w = runtime.NumCPU() //lint:allow nondet -- worker count affects scheduling only; results merge in input order
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			emit(i, run(ctx, i))
		}
		return
	}
	results := make([]T, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = run(ctx, i)
				close(done[i])
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()
	for i := 0; i < n; i++ {
		<-done[i]
		emit(i, results[i])
	}
	wg.Wait()
}
