// Package eval is the computational-evaluation harness of Section VI: it
// sweeps temporal flexibility over a family of random scenarios and records,
// per (flexibility, seed, algorithm), the solve statistics from which every
// figure of the paper (Figures 3–9) is regenerated.
package eval

import (
	"fmt"
	"io"
	"time"

	"tvnep/internal/core"
	"tvnep/internal/greedy"
	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/stats"
	"tvnep/internal/vnet"
	"tvnep/internal/workload"
)

// Config drives a sweep.
type Config struct {
	Workload workload.Config
	// FlexMinutes is the x-axis of every figure: the scheduling slack (in
	// "minutes" of scenario time, 60 min = 1 h) granted to every request.
	FlexMinutes []float64
	// Seeds identifies the independent scenarios per flexibility step
	// (the paper uses 24).
	Seeds []int64
	// TimeLimit bounds each MIP solve (the paper uses one hour).
	TimeLimit time.Duration
}

// Default returns a configuration sized for the pure-Go solver: the paper's
// distributions on a smaller grid with fewer requests, a sweep of 0–300
// minutes in 60-minute steps, and short per-solve limits.
func Default() Config {
	wl := workload.Default()
	wl.GridRows, wl.GridCols = 2, 2
	wl.NumRequests = 5
	wl.StarLeaves = 2
	return Config{
		Workload:    wl,
		FlexMinutes: []float64{0, 60, 120, 180, 240, 300},
		Seeds:       []int64{1, 2, 3, 4, 5},
		TimeLimit:   60 * time.Second,
	}
}

// Paper returns the paper's exact evaluation setup (Section VI-A): 4×5
// grid, 20 requests, flexibility 0–300 min in 30-minute steps, 24 seeds,
// one-hour time limit. Running it with this repository's solver takes far
// longer than with Gurobi; it exists for completeness.
func Paper() Config {
	flex := make([]float64, 11)
	seeds := make([]int64, 24)
	for i := range flex {
		flex[i] = float64(30 * i)
	}
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return Config{
		Workload:    workload.PaperScale(),
		FlexMinutes: flex,
		Seeds:       seeds,
		TimeLimit:   time.Hour,
	}
}

// Record is one solve outcome.
type Record struct {
	FlexMin  float64
	Seed     int64
	Form     core.Formulation
	Obj      core.Objective
	Algo     string // "mip" or "greedy"
	Runtime  time.Duration
	Gap      float64 // relative branch-and-bound gap; +Inf if no solution
	Value    float64 // objective value achieved (0 if none)
	Accepted int
	Optimal  bool
	Feasible bool // independent checker verdict (false when no solution)
	Nodes    int
	LPIters  int
}

// scenario builds the core instance for (flexMin, seed).
func (c Config) scenario(flexMin float64, seed int64) (*core.Instance, vnet.NodeMapping) {
	wl := c.Workload
	wl.FlexibilityHr = flexMin / 60
	sc := workload.Generate(wl, seed)
	return &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}, sc.Mapping
}

// solveOne runs a single MIP solve and converts it into a Record.
func (c Config) solveOne(f core.Formulation, obj core.Objective, inst *core.Instance,
	mapping vnet.NodeMapping, flexMin float64, seed int64) Record {
	b := core.Build(f, inst, core.BuildOptions{Objective: obj, FixedMapping: mapping})
	sol, ms := b.Solve(&model.SolveOptions{TimeLimit: c.TimeLimit})
	rec := Record{
		FlexMin: flexMin, Seed: seed, Form: f, Obj: obj, Algo: "mip",
		Runtime: ms.Runtime, Gap: ms.Gap, Nodes: ms.Nodes, LPIters: ms.LPIterations,
		Optimal: ms.Status == 0,
	}
	if sol != nil {
		rec.Value = sol.Objective
		rec.Accepted = sol.NumAccepted()
		rec.Feasible = solution.Check(inst.Sub, inst.Reqs, sol) == nil
	}
	return rec
}

// AccessControlSweep solves every (flexibility, seed) scenario under the
// access-control objective with each formulation. It yields the data behind
// Figures 3, 4, 8 and 9.
func (c Config) AccessControlSweep(forms []core.Formulation, progress io.Writer) []Record {
	var out []Record
	for _, flex := range c.FlexMinutes {
		for _, seed := range c.Seeds {
			inst, mapping := c.scenario(flex, seed)
			for _, f := range forms {
				rec := c.solveOne(f, core.AccessControl, inst, mapping, flex, seed)
				out = append(out, rec)
				if progress != nil {
					fmt.Fprintf(progress, "flex=%3.0f seed=%2d %-2v obj=%7.2f gap=%6.3g time=%8.2fs nodes=%d\n",
						flex, seed, f, rec.Value, rec.Gap, rec.Runtime.Seconds(), rec.Nodes)
				}
			}
		}
	}
	return out
}

// ObjectivesSweep runs the cΣ-Model under the three fixed-set objectives of
// Section IV-E (earliness, node-load balance, link disabling) for every
// scenario, embedding the request set accepted by an access-control
// pre-pass (the paper's Figure 8 reports exactly that set size). Data for
// Figures 5 and 6.
func (c Config) ObjectivesSweep(progress io.Writer) []Record {
	var out []Record
	for _, flex := range c.FlexMinutes {
		for _, seed := range c.Seeds {
			inst, mapping := c.scenario(flex, seed)
			pre := core.BuildCSigma(inst, core.BuildOptions{
				Objective: core.AccessControl, FixedMapping: mapping,
			})
			preSol, _ := pre.Solve(&model.SolveOptions{TimeLimit: c.TimeLimit})
			if preSol == nil {
				continue
			}
			// Restrict to the accepted set.
			var reqs []*vnet.Request
			var subMap vnet.NodeMapping
			for r, acc := range preSol.Accepted {
				if acc {
					reqs = append(reqs, inst.Reqs[r])
					subMap = append(subMap, mapping[r])
				}
			}
			if len(reqs) == 0 {
				continue
			}
			sub := &core.Instance{Sub: inst.Sub, Reqs: reqs, Horizon: inst.Horizon}
			for _, obj := range []core.Objective{core.MaxEarliness, core.BalanceNodeLoad, core.DisableLinks} {
				rec := c.solveOne(core.CSigma, obj, sub, subMap, flex, seed)
				rec.Accepted = len(reqs)
				out = append(out, rec)
				if progress != nil {
					fmt.Fprintf(progress, "flex=%3.0f seed=%2d cΣ %-18v obj=%7.2f gap=%6.3g time=%8.2fs\n",
						flex, seed, rec.Obj, rec.Value, rec.Gap, rec.Runtime.Seconds())
				}
			}
		}
	}
	return out
}

// GreedySweep runs cΣ_A^G and the optimal cΣ-Model side by side on every
// scenario (Figure 7 reports the relative performance).
func (c Config) GreedySweep(progress io.Writer) []Record {
	var out []Record
	for _, flex := range c.FlexMinutes {
		for _, seed := range c.Seeds {
			inst, mapping := c.scenario(flex, seed)
			opt := c.solveOne(core.CSigma, core.AccessControl, inst, mapping, flex, seed)
			out = append(out, opt)

			start := time.Now()
			gsol, gstats, err := greedy.Solve(inst, mapping, greedy.Options{IterTimeLimit: c.TimeLimit})
			rec := Record{
				FlexMin: flexMin(flex), Seed: seed, Form: core.CSigma,
				Obj: core.AccessControl, Algo: "greedy",
				Runtime: time.Since(start),
				Nodes:   gstats.TotalBBNodes, LPIters: gstats.TotalLPIters,
			}
			if err == nil && gsol != nil {
				rec.Value = gsol.Objective
				rec.Accepted = gsol.NumAccepted()
				rec.Feasible = solution.Check(inst.Sub, inst.Reqs, gsol) == nil
			}
			out = append(out, rec)
			if progress != nil {
				fmt.Fprintf(progress, "flex=%3.0f seed=%2d greedy obj=%7.2f (opt %7.2f) time=%8.2fs\n",
					flex, seed, rec.Value, opt.Value, rec.Runtime.Seconds())
			}
		}
	}
	return out
}

func flexMin(v float64) float64 { return v }

// Series is one plottable line: per x-value summary statistics over seeds.
type Series struct {
	Label     string
	X         []float64
	Summaries []stats.Summary
}

// collect groups values of records matching pred by flexibility.
func collect(records []Record, xs []float64, pred func(Record) bool, val func(Record) float64) (series []float64, sums []stats.Summary) {
	var out []stats.Summary
	for _, x := range xs {
		var sample []float64
		for _, r := range records {
			if r.FlexMin == x && pred(r) {
				sample = append(sample, val(r))
			}
		}
		out = append(out, stats.Summarize(sample))
	}
	return xs, out
}

// WriteSeries renders series as an aligned text table.
func WriteSeries(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "# %s\n", title)
	for _, s := range series {
		fmt.Fprintf(w, "## %s\n", s.Label)
		fmt.Fprintf(w, "%10s %12s %12s %12s %12s %12s %8s\n", "flex_min", "min", "q1", "median", "q3", "max", "n")
		for i, x := range s.X {
			sm := s.Summaries[i]
			fmt.Fprintf(w, "%10.0f %12.4g %12.4g %12.4g %12.4g %12.4g %8d\n",
				x, sm.Min, sm.Q1, sm.Median, sm.Q3, sm.Max, sm.N)
		}
	}
	fmt.Fprintln(w)
}
