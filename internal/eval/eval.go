// Package eval is the computational-evaluation harness of Section VI: it
// sweeps temporal flexibility over a family of random scenarios and records,
// per (flexibility, seed, algorithm), the solve statistics from which every
// figure of the paper (Figures 3–9) is regenerated.
//
// Sweeps are embarrassingly parallel across (flexibility, seed) scenarios:
// every sweep fans its scenarios out over a bounded worker pool (Config.
// Solve.Workers, default runtime.NumCPU()) while emitting records and
// progress lines in exactly the order a serial run would produce — results
// are handed back in scenario order, so output is deterministic and
// independent of the worker count. Cancelling the context stops every
// in-flight solve cooperatively.
package eval

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"tvnep/internal/certify"
	"tvnep/internal/core"
	"tvnep/internal/greedy"
	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/stats"
	"tvnep/internal/vnet"
	"tvnep/internal/workload"
)

// Config drives a sweep.
type Config struct {
	Workload workload.Config
	// FlexMinutes is the x-axis of every figure: the scheduling slack (in
	// "minutes" of scenario time, 60 min = 1 h) granted to every request.
	FlexMinutes []float64
	// Seeds identifies the independent scenarios per flexibility step
	// (the paper uses 24).
	Seeds []int64
	// Solve configures every MIP solve of the sweep. TimeLimit bounds each
	// solve (the paper uses one hour); Workers bounds the number of
	// scenarios solved concurrently (≤ 0 means runtime.NumCPU()).
	Solve model.SolveOptions
	// Counters, when non-nil, accumulates aggregate solver activity across
	// the sweep (thread-safe; may be shared between sweeps).
	Counters *Counters
	// Certify runs the full internal/certify certificate (capacities at
	// every event interval, flow conservation, objective recomputation, and
	// — under CutLazy — re-validation of every applied cut against the
	// dependency graph) on every solution produced by the sweep, counting
	// verdicts in Counters.
	Certify bool
	// CutMode selects the Constraint-(20) pipeline for every cΣ build of the
	// sweep: static emission (default), lazy separation, or off. Δ/Σ builds
	// ignore it.
	CutMode core.CutMode
	// FlowMode selects arc-based (default) or path-based link flows for
	// every cΣ build of the sweep; path mode prices path columns on demand.
	// Δ/Σ builds ignore it.
	FlowMode core.FlowMode
	// Seed is the base seed of every randomized component of a sweep (the
	// rounding tier). Scenario-local seeds are derived from it with
	// round.MixSeed, so sweeps are bit-identical for equal Seed values and
	// every worker count; there is no package-level randomness anywhere.
	Seed int64
}

// Default returns a configuration sized for the pure-Go solver: the paper's
// distributions on a smaller grid with fewer requests, a sweep of 0–300
// minutes in 60-minute steps, and short per-solve limits.
func Default() Config {
	wl := workload.Default()
	wl.GridRows, wl.GridCols = 2, 2
	wl.NumRequests = 5
	wl.StarLeaves = 2
	return Config{
		Workload:    wl,
		FlexMinutes: []float64{0, 60, 120, 180, 240, 300},
		Seeds:       []int64{1, 2, 3, 4, 5},
		Solve:       model.SolveOptions{TimeLimit: 60 * time.Second},
	}
}

// Paper returns the paper's exact evaluation setup (Section VI-A): 4×5
// grid, 20 requests, flexibility 0–300 min in 30-minute steps, 24 seeds,
// one-hour time limit. Running it with this repository's solver takes far
// longer than with Gurobi; it exists for completeness.
func Paper() Config {
	flex := make([]float64, 11)
	seeds := make([]int64, 24)
	for i := range flex {
		flex[i] = float64(30 * i)
	}
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return Config{
		Workload:    workload.PaperScale(),
		FlexMinutes: flex,
		Seeds:       seeds,
		Solve:       model.SolveOptions{TimeLimit: time.Hour},
	}
}

// Record is one solve outcome.
type Record struct {
	FlexMin  float64
	Seed     int64
	Form     core.Formulation
	Obj      core.Objective
	Algo     string // "mip" or "greedy"
	Runtime  time.Duration
	Gap      float64 // relative branch-and-bound gap; +Inf if no solution
	Value    float64 // objective value achieved (0 if none)
	Accepted int
	Optimal  bool
	Feasible bool // independent checker verdict (false when no solution)
	// Certified is the internal/certify verdict (only meaningful when
	// Config.Certify is set and a solution exists).
	Certified bool
	Nodes     int
	LPIters   int
	// FellBack reports that a rounding solve exhausted its samples and ran
	// the exact branch-and-bound fallback (rounding records only).
	FellBack bool
}

// scenKey identifies one scenario of the sweep grid.
type scenKey struct {
	flex float64
	seed int64
}

// pairs flattens the (flexibility × seed) grid in sweep order.
func (c Config) pairs() []scenKey {
	out := make([]scenKey, 0, len(c.FlexMinutes)*len(c.Seeds))
	for _, flex := range c.FlexMinutes {
		for _, seed := range c.Seeds {
			out = append(out, scenKey{flex, seed})
		}
	}
	return out
}

// scenario builds the core instance for (flexMin, seed). Generation is
// deterministic in (config, seed) and uses no shared state, so scenarios
// can be built concurrently.
func (c Config) scenario(flexMin float64, seed int64) (*core.Instance, vnet.NodeMapping) {
	wl := c.Workload
	wl.FlexibilityHr = flexMin / 60
	sc := workload.Generate(wl, seed)
	return &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}, sc.Mapping
}

// innerSolve is the option set handed to each individual solve of a sweep:
// the sweep already parallelizes across scenarios with Solve.Workers, so
// the branch-and-bound search inside each solve runs single-worker — the
// two levels must not multiply into Workers² goroutines. (Direct solves
// outside a sweep, e.g. tvnep-solve, do hand Workers to the tree search.)
func (c Config) innerSolve() model.SolveOptions {
	o := c.Solve
	o.Workers = 1
	return o
}

// count feeds one model solution into the aggregate counters, if any.
func (c Config) count(ms *model.Solution) {
	if c.Counters == nil {
		return
	}
	c.Counters.Solves.Add(1)
	if ms.Status == model.StatusOptimal {
		c.Counters.Optimal.Add(1)
	}
	if ms.Status == model.StatusCancelled {
		c.Counters.Cancelled.Add(1)
	}
	c.Counters.Nodes.Add(int64(ms.Nodes))
	c.Counters.LPIters.Add(int64(ms.LPIterations))
	c.Counters.BoundFlips.Add(int64(ms.BoundFlips))
	c.Counters.RatioPasses.Add(int64(ms.RatioPasses))
	c.Counters.CutRowsRoot.Add(int64(ms.Cuts.RowsAtRoot))
	c.Counters.CutRowsSeparated.Add(int64(ms.Cuts.SeparatedRows))
	c.Counters.CutRounds.Add(int64(ms.Cuts.Rounds))
	c.Counters.CutOffered.Add(int64(ms.Cuts.Offered))
	c.Counters.CutPoolHits.Add(int64(ms.Cuts.PoolHits))
}

// solveOne runs a single MIP solve and converts it into a Record. A
// context cancelled before the solve starts short-circuits the (potentially
// expensive) model build too, so an interrupted sweep drains its remaining
// scenarios in microseconds instead of constructing models that the solver
// would only refuse to run.
func (c Config) solveOne(ctx context.Context, f core.Formulation, obj core.Objective, inst *core.Instance,
	mapping vnet.NodeMapping, flexMin float64, seed int64) Record {
	if ctx != nil && ctx.Err() != nil {
		if c.Counters != nil {
			c.Counters.Solves.Add(1)
			c.Counters.Cancelled.Add(1)
		}
		return Record{
			FlexMin: flexMin, Seed: seed, Form: f, Obj: obj, Algo: "mip",
			Gap: math.Inf(1),
		}
	}
	bo := core.BuildOptions{Objective: obj, FixedMapping: mapping, CutMode: c.CutMode}
	if f == core.CSigma {
		bo.FlowMode = c.FlowMode // Δ/Σ have no path-flow variant
	}
	b := core.Build(f, inst, bo)
	inner := c.innerSolve()
	sol, ms := b.Solve(ctx, &inner)
	c.count(ms)
	rec := Record{
		FlexMin: flexMin, Seed: seed, Form: f, Obj: obj, Algo: "mip",
		Runtime: ms.Runtime, Gap: ms.Gap, Nodes: ms.Nodes, LPIters: ms.LPIterations,
		Optimal: ms.Status == model.StatusOptimal,
	}
	if sol != nil {
		rec.Value = sol.Objective
		rec.Accepted = sol.NumAccepted()
		rec.Feasible = solution.Check(inst.Sub, inst.Reqs, sol) == nil
		if c.Certify {
			rec.Certified = c.certifyOne(inst, sol, obj, mapping, b, ms)
		}
	}
	return rec
}

// certifyOne runs the independent certificate on one solution and folds the
// verdict into the counters. When the solve carries applied cuts (lazy
// separation), every cut row is additionally re-validated against the
// dependency graph — a cut excluding this certified-feasible incumbent is a
// named violation. Violations are reported on stderr so a failing sweep
// names the defect even when the figure aggregation hides the record.
// b and ms may be nil (the greedy path has no single built model).
func (c Config) certifyOne(inst *core.Instance, sol *solution.Solution,
	obj core.Objective, mapping vnet.NodeMapping, b *core.Built, ms *model.Solution) bool {
	rep := certify.Solution(inst, sol, certify.Options{Objective: obj, Mapping: mapping})
	if rep.OK() && b != nil && ms != nil {
		rep = certify.Cuts(b, ms)
	}
	if rep.OK() && b != nil && ms != nil {
		rep = certify.Columns(b, ms)
	}
	if c.Counters != nil {
		c.Counters.Certified.Add(1)
		if !rep.OK() {
			c.Counters.CertifyFailed.Add(1)
		}
	}
	if err := rep.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "eval: certificate failure (%v): %v\n", obj, err)
		return false
	}
	return true
}

// scenResult is what one parallel scenario hands back to the emitter: its
// records plus the progress text a serial run would have printed.
type scenResult struct {
	recs []Record
	log  string
}

// sweep runs one scenario body per (flex, seed) pair on the worker pool and
// concatenates records in scenario order.
func (c Config) sweep(ctx context.Context, progress io.Writer,
	body func(ctx context.Context, key scenKey, log *strings.Builder) []Record) []Record {
	keys := c.pairs()
	var out []Record
	runOrdered(ctx, c.Solve.Workers, len(keys),
		func(ctx context.Context, i int) scenResult {
			var log strings.Builder
			recs := body(ctx, keys[i], &log)
			return scenResult{recs: recs, log: log.String()}
		},
		func(_ int, r scenResult) {
			out = append(out, r.recs...)
			if progress != nil && r.log != "" {
				io.WriteString(progress, r.log)
			}
		})
	return out
}

// AccessControlSweep solves every (flexibility, seed) scenario under the
// access-control objective with each formulation. It yields the data behind
// Figures 3, 4, 8 and 9. Scenarios run concurrently (Config.Solve.Workers);
// records and progress lines keep serial order.
//
//det:entry
func (c Config) AccessControlSweep(ctx context.Context, forms []core.Formulation, progress io.Writer) []Record {
	return c.sweep(ctx, progress, func(ctx context.Context, key scenKey, log *strings.Builder) []Record {
		inst, mapping := c.scenario(key.flex, key.seed)
		recs := make([]Record, 0, len(forms))
		for _, f := range forms {
			rec := c.solveOne(ctx, f, core.AccessControl, inst, mapping, key.flex, key.seed)
			recs = append(recs, rec)
			fmt.Fprintf(log, "flex=%3.0f seed=%2d %-2v obj=%7.2f gap=%6.3g time=%8.2fs nodes=%d\n",
				key.flex, key.seed, f, rec.Value, rec.Gap, rec.Runtime.Seconds(), rec.Nodes)
		}
		return recs
	})
}

// ObjectivesSweep runs the cΣ-Model under the three fixed-set objectives of
// Section IV-E (earliness, node-load balance, link disabling) for every
// scenario, embedding the request set accepted by an access-control
// pre-pass (the paper's Figure 8 reports exactly that set size). Data for
// Figures 5 and 6.
//
//det:entry
func (c Config) ObjectivesSweep(ctx context.Context, progress io.Writer) []Record {
	return c.sweep(ctx, progress, func(ctx context.Context, key scenKey, log *strings.Builder) []Record {
		inst, mapping := c.scenario(key.flex, key.seed)
		pre := core.BuildCSigma(inst, core.BuildOptions{
			Objective: core.AccessControl, FixedMapping: mapping, CutMode: c.CutMode,
			FlowMode: c.FlowMode,
		})
		preInner := c.innerSolve()
		preSol, preMS := pre.Solve(ctx, &preInner)
		c.count(preMS)
		if preSol == nil {
			return nil
		}
		// Restrict to the accepted set.
		var reqs []*vnet.Request
		var subMap vnet.NodeMapping
		for r, acc := range preSol.Accepted {
			if acc {
				reqs = append(reqs, inst.Reqs[r])
				subMap = append(subMap, mapping[r])
			}
		}
		if len(reqs) == 0 {
			return nil
		}
		sub := &core.Instance{Sub: inst.Sub, Reqs: reqs, Horizon: inst.Horizon}
		var recs []Record
		for _, obj := range []core.Objective{core.MaxEarliness, core.BalanceNodeLoad, core.DisableLinks} {
			rec := c.solveOne(ctx, core.CSigma, obj, sub, subMap, key.flex, key.seed)
			rec.Accepted = len(reqs)
			recs = append(recs, rec)
			fmt.Fprintf(log, "flex=%3.0f seed=%2d cΣ %-18v obj=%7.2f gap=%6.3g time=%8.2fs\n",
				key.flex, key.seed, rec.Obj, rec.Value, rec.Gap, rec.Runtime.Seconds())
		}
		return recs
	})
}

// GreedySweep runs cΣ_A^G and the optimal cΣ-Model side by side on every
// scenario (Figure 7 reports the relative performance).
//
//det:entry
func (c Config) GreedySweep(ctx context.Context, progress io.Writer) []Record {
	return c.sweep(ctx, progress, func(ctx context.Context, key scenKey, log *strings.Builder) []Record {
		inst, mapping := c.scenario(key.flex, key.seed)
		opt := c.solveOne(ctx, core.CSigma, core.AccessControl, inst, mapping, key.flex, key.seed)

		start := time.Now() //lint:allow nondet -- greedy runtime measurement; recorded, not branched on
		gso := c.innerSolve()
		gsol, gstats, err := greedy.Solve(ctx, inst, mapping,
			core.BuildOptions{CutMode: c.CutMode, FlowMode: c.FlowMode}, &gso)
		rec := Record{
			FlexMin: key.flex, Seed: key.seed, Form: core.CSigma,
			Obj: core.AccessControl, Algo: "greedy",
			Runtime: time.Since(start), //lint:allow nondet -- greedy runtime measurement
			Nodes:   gstats.TotalBBNodes, LPIters: gstats.TotalLPIters,
		}
		if err == nil && gsol != nil {
			rec.Value = gsol.Objective
			rec.Accepted = gsol.NumAccepted()
			rec.Feasible = solution.Check(inst.Sub, inst.Reqs, gsol) == nil
			if c.Certify {
				rec.Certified = c.certifyOne(inst, gsol, core.AccessControl, mapping, nil, nil)
			}
		}
		fmt.Fprintf(log, "flex=%3.0f seed=%2d greedy obj=%7.2f (opt %7.2f) time=%8.2fs\n",
			key.flex, key.seed, rec.Value, opt.Value, rec.Runtime.Seconds())
		return []Record{opt, rec}
	})
}

// Series is one plottable line: per x-value summary statistics over seeds.
type Series struct {
	Label     string
	X         []float64
	Summaries []stats.Summary
}

// collect groups values of records matching pred by flexibility.
func collect(records []Record, xs []float64, pred func(Record) bool, val func(Record) float64) (series []float64, sums []stats.Summary) {
	var out []stats.Summary
	for _, x := range xs {
		var sample []float64
		for _, r := range records {
			//lint:allow floateq -- FlexMin is copied verbatim from the config grid; bit-exact group key
			if r.FlexMin == x && pred(r) {
				sample = append(sample, val(r))
			}
		}
		out = append(out, stats.Summarize(sample))
	}
	return xs, out
}

// WriteSeries renders series as an aligned text table.
func WriteSeries(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "# %s\n", title)
	for _, s := range series {
		fmt.Fprintf(w, "## %s\n", s.Label)
		fmt.Fprintf(w, "%10s %12s %12s %12s %12s %12s %8s\n", "flex_min", "min", "q1", "median", "q3", "max", "n")
		for i, x := range s.X {
			sm := s.Summaries[i]
			fmt.Fprintf(w, "%10.0f %12.4g %12.4g %12.4g %12.4g %12.4g %8d\n",
				x, sm.Min, sm.Q1, sm.Median, sm.Q3, sm.Max, sm.N)
		}
	}
	fmt.Fprintln(w)
}
