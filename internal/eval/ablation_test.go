package eval

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"tvnep/internal/model"
	"tvnep/internal/workload"
)

func TestAblationSweep(t *testing.T) {
	wl := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 3, StarLeaves: 1,
		DemandLow: 0.5, DemandHigh: 1.5,
		MeanInterArr: 1, WeibullShape: 2, WeibullScale: 2,
	}
	cfg := Config{
		Workload:    wl,
		FlexMinutes: []float64{0, 120},
		Seeds:       []int64{1, 2},
		Solve:       model.SolveOptions{TimeLimit: 20 * time.Second},
	}
	recs, err := cfg.AblationSweep(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 flex × 2 seeds × 5 variants.
	if len(recs) != 20 {
		t.Fatalf("%d records, want 20", len(recs))
	}
	// The full model must never be larger than the bare model.
	byKey := map[string]AblationRecord{}
	for _, r := range recs {
		byKey[r.Variant+string(rune(int(r.FlexMin)))+string(rune(r.Seed))] = r
	}
	for _, flex := range cfg.FlexMinutes {
		for _, seed := range cfg.Seeds {
			var full, bare, lazy *AblationRecord
			for i := range recs {
				r := &recs[i]
				if r.FlexMin != flex || r.Seed != seed {
					continue
				}
				switch r.Variant {
				case "cΣ full":
					full = r
				case "cΣ bare":
					bare = r
				case "cΣ lazy-cuts":
					lazy = r
				}
			}
			if full == nil || bare == nil || lazy == nil {
				t.Fatal("missing variants")
			}
			if full.NumVars > bare.NumVars {
				t.Fatalf("flex=%v seed=%d: full model has more variables (%d) than bare (%d)",
					flex, seed, full.NumVars, bare.NumVars)
			}
			if !full.Optimal || !bare.Optimal || !lazy.Optimal {
				t.Fatalf("flex=%v seed=%d: tiny ablation instance not solved to optimality", flex, seed)
			}
			if !full.Feasible || !bare.Feasible || !lazy.Feasible {
				t.Fatalf("flex=%v seed=%d: ablation solution failed the checker", flex, seed)
			}
			// Lazy defers the Constraint-(20) family, so its root model is
			// never larger than the fully emitted one; everything it adds
			// back during the solve is counted in SeparatedRows.
			if lazy.NumConstrs > full.NumConstrs {
				t.Fatalf("flex=%v seed=%d: lazy root has more rows (%d) than static (%d)",
					flex, seed, lazy.NumConstrs, full.NumConstrs)
			}
			if lazy.SeparatedRows > full.NumConstrs-lazy.NumConstrs {
				t.Fatalf("flex=%v seed=%d: lazy separated %d rows but only %d were deferred",
					flex, seed, lazy.SeparatedRows, full.NumConstrs-lazy.NumConstrs)
			}
			if full.SeparatedRows != 0 || bare.SeparatedRows != 0 {
				t.Fatalf("flex=%v seed=%d: non-lazy variants report separated rows", flex, seed)
			}
		}
	}

	var buf bytes.Buffer
	WriteAblation(&buf, recs, cfg)
	out := buf.String()
	if !strings.Contains(out, "cΣ full") || !strings.Contains(out, "cΣ bare") {
		t.Fatalf("ablation report incomplete:\n%s", out)
	}
}

func TestMedianHelper(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("median(nil) != 0")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median wrong")
	}
}
