package eval

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"tvnep/internal/model"
	"tvnep/internal/workload"
)

func TestAblationSweep(t *testing.T) {
	wl := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 3, StarLeaves: 1,
		DemandLow: 0.5, DemandHigh: 1.5,
		MeanInterArr: 1, WeibullShape: 2, WeibullScale: 2,
	}
	cfg := Config{
		Workload:    wl,
		FlexMinutes: []float64{0, 120},
		Seeds:       []int64{1, 2},
		Solve:       model.SolveOptions{TimeLimit: 20 * time.Second},
	}
	recs, err := cfg.AblationSweep(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 flex × 2 seeds × 4 variants.
	if len(recs) != 16 {
		t.Fatalf("%d records, want 16", len(recs))
	}
	// The full model must never be larger than the bare model.
	byKey := map[string]AblationRecord{}
	for _, r := range recs {
		byKey[r.Variant+string(rune(int(r.FlexMin)))+string(rune(r.Seed))] = r
	}
	for _, flex := range cfg.FlexMinutes {
		for _, seed := range cfg.Seeds {
			var full, bare *AblationRecord
			for i := range recs {
				r := &recs[i]
				if r.FlexMin != flex || r.Seed != seed {
					continue
				}
				switch r.Variant {
				case "cΣ full":
					full = r
				case "cΣ bare":
					bare = r
				}
			}
			if full == nil || bare == nil {
				t.Fatal("missing variants")
			}
			if full.NumVars > bare.NumVars {
				t.Fatalf("flex=%v seed=%d: full model has more variables (%d) than bare (%d)",
					flex, seed, full.NumVars, bare.NumVars)
			}
			if !full.Optimal || !bare.Optimal {
				t.Fatalf("flex=%v seed=%d: tiny ablation instance not solved to optimality", flex, seed)
			}
			if !full.Feasible || !bare.Feasible {
				t.Fatalf("flex=%v seed=%d: ablation solution failed the checker", flex, seed)
			}
		}
	}

	var buf bytes.Buffer
	WriteAblation(&buf, recs, cfg)
	out := buf.String()
	if !strings.Contains(out, "cΣ full") || !strings.Contains(out, "cΣ bare") {
		t.Fatalf("ablation report incomplete:\n%s", out)
	}
}

func TestMedianHelper(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("median(nil) != 0")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median wrong")
	}
}
