package eval

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"tvnep/internal/admit"
	"tvnep/internal/round"
	"tvnep/internal/stats"
)

// StreamRecord is the outcome of replaying one scenario's arrival trace
// through the online admission engine (internal/admit): per-trace decision
// counts, tier usage, warm-restart adoption and the latency distribution of
// the individual admission decisions.
type StreamRecord struct {
	FlexMin    float64
	Seed       int64
	Decisions  int
	Accepted   int
	AcceptRate float64
	WarmRate   float64
	// P50 and P99 are quantiles of the per-decision admission latency.
	P50, P99 time.Duration
	// Tier usage across the trace.
	Precheck, LPTier, MIPTier int
	CertFailures              int
	Runtime                   time.Duration
}

// streamResult is what one parallel trace replay hands back to the emitter.
type streamResult struct {
	rec StreamRecord
	err error
	log string
}

// StreamSweep replays every (flexibility, seed) scenario of the sweep grid
// as an online arrival trace: one fresh admission engine per scenario,
// requests streamed in arrival order (workload traces are generated with
// Earliest = arrival time, so sweep order is arrival order). Scenarios run
// concurrently on the worker pool; records and progress lines keep serial
// order, and each engine's decision sequence is deterministic, so the sweep
// output is bit-identical for every worker count as long as Config.Solve
// carries node-based limits.
//
//det:entry
func (c Config) StreamSweep(ctx context.Context, progress io.Writer) ([]StreamRecord, error) {
	keys := c.pairs()
	out := make([]StreamRecord, 0, len(keys))
	var firstErr error
	runOrdered(ctx, c.Solve.Workers, len(keys),
		func(ctx context.Context, i int) streamResult {
			var log strings.Builder
			rec, err := c.streamOne(ctx, keys[i].flex, keys[i].seed, &log)
			return streamResult{rec: rec, err: err, log: log.String()}
		},
		func(_ int, r streamResult) {
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
			out = append(out, r.rec)
			if progress != nil && r.log != "" {
				io.WriteString(progress, r.log)
			}
		})
	return out, firstErr
}

// streamOne replays one scenario through a fresh engine.
func (c Config) streamOne(ctx context.Context, flexMin float64, seed int64, log *strings.Builder) (StreamRecord, error) {
	inst, mapping := c.scenario(flexMin, seed)
	eng, err := admit.New(admit.Config{
		Sub:     inst.Sub,
		Horizon: inst.Horizon,
		Solve:   c.innerSolve(),
		CutMode: c.CutMode,
		Seed:    round.MixSeed(c.Seed, seed, int64(math.Float64bits(flexMin))),
		Certify: c.Certify,
	})
	if err != nil {
		return StreamRecord{FlexMin: flexMin, Seed: seed}, err
	}
	start := time.Now() //lint:allow nondet -- stream runtime measurement; recorded, not branched on
	for r, req := range inst.Reqs {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		if _, err := eng.Admit(ctx, req, mapping[r]); err != nil {
			return StreamRecord{FlexMin: flexMin, Seed: seed}, fmt.Errorf("stream flex=%g seed=%d request %d: %w", flexMin, seed, r, err)
		}
	}
	es := eng.Stats()
	rec := StreamRecord{
		FlexMin:      flexMin,
		Seed:         seed,
		Decisions:    es.Decisions,
		Accepted:     es.Accepted,
		AcceptRate:   es.AcceptRate(),
		WarmRate:     es.WarmRate(),
		P50:          es.LatencyP50,
		P99:          es.LatencyP99,
		Precheck:     es.PrecheckTier,
		LPTier:       es.LPTier,
		MIPTier:      es.MIPTier,
		CertFailures: es.CertFailures,
		Runtime:      time.Since(start), //lint:allow nondet -- stream runtime measurement
	}
	if c.Counters != nil {
		c.Counters.Solves.Add(int64(es.LPTier + es.MIPTier))
		c.Counters.Nodes.Add(int64(es.TotalNodes))
		c.Counters.LPIters.Add(int64(es.TotalLPIters))
		if c.Certify {
			c.Counters.Certified.Add(int64(es.Decisions))
			c.Counters.CertifyFailed.Add(int64(es.CertFailures))
		}
	}
	fmt.Fprintf(log, "flex=%3.0f seed=%2d stream n=%d accept=%.2f warm=%.2f p50=%s p99=%s tiers=%d/%d/%d\n",
		flexMin, seed, rec.Decisions, rec.AcceptRate, rec.WarmRate,
		rec.P50.Round(time.Microsecond), rec.P99.Round(time.Microsecond),
		rec.Precheck, rec.LPTier, rec.MIPTier)
	return rec, nil
}

// WriteStreamTable renders the streaming-throughput table: per flexibility
// step the mean accept and warm rates across seeds, the median of the
// per-trace p50 latencies and the worst per-trace p99. The p99 column is the
// sweep's bounded-latency claim: it is the slowest percentile any seed
// experienced at that flexibility.
func WriteStreamTable(w io.Writer, title string, recs []StreamRecord, cfg Config) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%10s %10s %12s %11s %12s %12s %8s\n",
		"flex_min", "decisions", "accept_rate", "warm_rate", "p50", "p99_max", "traces")
	for _, x := range cfg.FlexMinutes {
		var n, decisions int
		var acceptSum, warmSum float64
		var p50s []float64
		var p99Max time.Duration
		for _, r := range recs {
			//lint:allow floateq -- FlexMin is copied verbatim from the config grid; bit-exact group key
			if r.FlexMin != x || r.Decisions == 0 {
				continue
			}
			n++
			decisions += r.Decisions
			acceptSum += r.AcceptRate
			warmSum += r.WarmRate
			p50s = append(p50s, float64(r.P50))
			if r.P99 > p99Max {
				p99Max = r.P99
			}
		}
		if n == 0 {
			continue
		}
		p50 := time.Duration(stats.Quantile(p50s, 0.5))
		fmt.Fprintf(w, "%10.0f %10d %12.3f %11.3f %12s %12s %8d\n",
			x, decisions, acceptSum/float64(n), warmSum/float64(n),
			p50.Round(time.Microsecond), p99Max.Round(time.Microsecond), n)
	}
	fmt.Fprintln(w)
}
