package eval

import (
	"context"
	"strings"
	"testing"
	"time"

	"tvnep/internal/model"
)

// TestStreamSweepDeterministic replays the same streaming sweep with one and
// four scenario workers and requires identical records and identical
// progress output (latency fields excepted — they are wall-clock).
func TestStreamSweepDeterministic(t *testing.T) {
	cfg := Default()
	cfg.FlexMinutes = []float64{0, 120}
	cfg.Seeds = []int64{1, 2}
	cfg.Workload.NumRequests = 6
	cfg.Solve = model.SolveOptions{NodeLimit: 5000}
	cfg.Certify = true

	type key struct {
		flex                      float64
		seed                      int64
		decisions, accepted       int
		precheck, lpTier, mipTier int
		certFailures              int
	}
	run := func(workers int) []key {
		c := cfg
		c.Solve.Workers = workers
		var log strings.Builder
		recs, err := c.StreamSweep(context.Background(), &log)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(recs) != len(cfg.FlexMinutes)*len(cfg.Seeds) {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(recs), len(cfg.FlexMinutes)*len(cfg.Seeds))
		}
		out := make([]key, 0, len(recs))
		for _, r := range recs {
			if r.Decisions != cfg.Workload.NumRequests {
				t.Errorf("workers=%d flex=%g seed=%d: %d decisions, want %d",
					workers, r.FlexMin, r.Seed, r.Decisions, cfg.Workload.NumRequests)
			}
			if r.CertFailures != 0 {
				t.Errorf("workers=%d flex=%g seed=%d: %d certificate failures", workers, r.FlexMin, r.Seed, r.CertFailures)
			}
			if r.Decisions > 0 && (r.P50 <= 0 || r.P99 < r.P50) {
				t.Errorf("workers=%d flex=%g seed=%d: implausible latency quantiles p50=%v p99=%v",
					workers, r.FlexMin, r.Seed, r.P50, r.P99)
			}
			out = append(out, key{r.FlexMin, r.Seed, r.Decisions, r.Accepted,
				r.Precheck, r.LPTier, r.MIPTier, r.CertFailures})
		}
		return out
	}

	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("record %d diverges across worker counts: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

// TestWriteStreamTable smoke-tests the table renderer.
func TestWriteStreamTable(t *testing.T) {
	recs := []StreamRecord{
		{FlexMin: 0, Seed: 1, Decisions: 5, Accepted: 3, AcceptRate: 0.6, WarmRate: 1,
			P50: time.Millisecond, P99: 3 * time.Millisecond},
		{FlexMin: 0, Seed: 2, Decisions: 5, Accepted: 4, AcceptRate: 0.8, WarmRate: 1,
			P50: 2 * time.Millisecond, P99: 5 * time.Millisecond},
	}
	cfg := Default()
	cfg.FlexMinutes = []float64{0}
	var sb strings.Builder
	WriteStreamTable(&sb, "test", recs, cfg)
	out := sb.String()
	for _, want := range []string{"accept_rate", "0.700", "5ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
