package eval

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"tvnep/internal/core"
	"tvnep/internal/round"
	"tvnep/internal/solution"
	"tvnep/internal/stats"
)

// RoundingSweep runs the randomized-rounding tier and the optimal cΣ-Model
// side by side on every scenario under the access-control objective: the
// exact-vs-approx comparison behind the EXPERIMENTS table (objective gap,
// fallback rate, wall-clock). Scenario-local seeds derive from Config.Seed
// via round.MixSeed, so the sweep is bit-identical for equal seeds and
// every worker count.
//
//det:entry
func (c Config) RoundingSweep(ctx context.Context, progress io.Writer) []Record {
	return c.sweep(ctx, progress, func(ctx context.Context, key scenKey, log *strings.Builder) []Record {
		inst, mapping := c.scenario(key.flex, key.seed)
		opt := c.solveOne(ctx, core.CSigma, core.AccessControl, inst, mapping, key.flex, key.seed)

		cutMode := c.CutMode
		if cutMode == core.CutLazy {
			cutMode = core.CutStatic // nothing separates cuts during a bare relaxation
		}
		rsol, rstats, err := round.Solve(ctx, inst, mapping, round.Options{
			Seed:      round.MixSeed(c.Seed, key.seed, int64(math.Float64bits(key.flex))),
			Objective: core.AccessControl,
			CutMode:   cutMode,
			Solve:     c.innerSolve(),
		})
		rec := Record{
			FlexMin: key.flex, Seed: key.seed, Form: core.CSigma,
			Obj: core.AccessControl, Algo: "rounding",
			Runtime: rstats.Runtime, LPIters: rstats.LPIterations,
			Nodes: rstats.FallbackNodes, FellBack: rstats.FellBack,
			Gap: math.Inf(1),
		}
		if c.Counters != nil {
			c.Counters.Solves.Add(1)
			c.Counters.LPIters.Add(int64(rstats.LPIterations))
			c.Counters.Nodes.Add(int64(rstats.FallbackNodes))
		}
		if err == nil && rsol != nil {
			rec.Value = rsol.Objective
			rec.Accepted = rsol.NumAccepted()
			rec.Gap = rsol.Gap
			rec.Optimal = rsol.Optimal
			rec.Feasible = solution.Check(inst.Sub, inst.Reqs, rsol) == nil
			if c.Certify {
				rec.Certified = c.certifyOne(inst, rsol, core.AccessControl, mapping, nil, nil)
			}
		}
		fb := " "
		if rec.FellBack {
			fb = "F"
		}
		fmt.Fprintf(log, "flex=%3.0f seed=%2d rounding obj=%7.2f (opt %7.2f) lp-gap=%6.3g %s time=%8.4fs\n",
			key.flex, key.seed, rec.Value, opt.Value, rec.Gap, fb, rec.Runtime.Seconds())
		return []Record{opt, rec}
	})
}

// WriteRoundingTable renders the exact-vs-approx comparison: per
// flexibility step, the rounded objective's fraction of the exact optimum,
// the LP-bound gap, the fallback rate and both median wall-clocks.
func WriteRoundingTable(w io.Writer, records []Record) {
	type bucket struct {
		ratios, gaps, exactSec, roundSec []float64
		fellBack, roundRuns              int
	}
	var xs []float64
	buckets := map[float64]*bucket{}
	for _, r := range records {
		b, seen := buckets[r.FlexMin]
		if !seen {
			b = &bucket{}
			buckets[r.FlexMin] = b
			xs = append(xs, r.FlexMin)
		}
		if r.Algo != "rounding" {
			b.exactSec = append(b.exactSec, r.Runtime.Seconds())
			continue
		}
		b.roundRuns++
		b.roundSec = append(b.roundSec, r.Runtime.Seconds())
		if r.FellBack {
			b.fellBack++
		}
		if !math.IsInf(r.Gap, 1) {
			b.gaps = append(b.gaps, r.Gap)
		}
		// Pair with the exact record of the same (flex, seed) scenario.
		for _, o := range records {
			//lint:allow floateq -- FlexMin is copied verbatim from the config grid; bit-exact group key
			if o.Algo != "rounding" && o.FlexMin == r.FlexMin && o.Seed == r.Seed && o.Value > 0 {
				b.ratios = append(b.ratios, r.Value/o.Value)
				break
			}
		}
	}
	fmt.Fprintln(w, "# Exact vs randomized rounding (access control)")
	fmt.Fprintf(w, "%10s %12s %12s %12s %14s %14s %10s\n",
		"flex_min", "obj_ratio", "lp_gap_med", "fallback", "exact_med_s", "round_med_s", "n")
	for _, x := range xs {
		b := buckets[x]
		fbRate := 0.0
		if b.roundRuns > 0 {
			fbRate = float64(b.fellBack) / float64(b.roundRuns)
		}
		fmt.Fprintf(w, "%10.0f %12.4f %12.4g %12.3f %14.4f %14.4f %10d\n",
			x, stats.Summarize(b.ratios).Median, stats.Summarize(b.gaps).Median, fbRate,
			stats.Summarize(b.exactSec).Median, stats.Summarize(b.roundSec).Median, b.roundRuns)
	}
	fmt.Fprintln(w)
}
