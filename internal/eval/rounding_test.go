package eval

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestRoundingSweepDeterminism extends the worker-pool determinism
// contract to the randomized tier: at a fixed Config.Seed the rounding
// sweep must produce identical records — same accept counts, objectives,
// gaps and fallback flags, in the same order — for every worker count and
// across repeated runs. The per-scenario seeds derive from Config.Seed via
// round.MixSeed, so nothing may depend on scheduling.
func TestRoundingSweepDeterminism(t *testing.T) {
	run := func(workers int) ([]Record, string) {
		cfg := micro()
		cfg.Seed = 17
		cfg.Solve.TimeLimit = time.Hour
		cfg.Solve.Workers = workers
		var buf bytes.Buffer
		recs := cfg.RoundingSweep(context.Background(), &buf)
		return zeroRuntimes(recs), stripTimes(buf.String())
	}
	refRecs, refLog := run(1)
	if len(refRecs) != 2*len(micro().pairs()) {
		t.Fatalf("%d records, want an exact+rounding pair per scenario (%d)", len(refRecs), 2*len(micro().pairs()))
	}
	rounded := 0
	for _, r := range refRecs {
		if r.Algo == "rounding" && r.Feasible {
			rounded++
		}
	}
	if rounded == 0 {
		t.Fatal("no feasible rounding records; the sweep lost its coverage")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		recs, log := run(workers)
		if !reflect.DeepEqual(refRecs, recs) {
			t.Fatalf("records differ between 1 and %d workers:\nref: %+v\ngot: %+v", workers, refRecs, recs)
		}
		if log != refLog {
			t.Fatalf("progress output differs between 1 and %d workers:\nref:\n%s\ngot:\n%s", workers, refLog, log)
		}
	}
	// A different base seed must be allowed to make different random
	// choices, but still produce one exact+rounding pair per scenario.
	other := func() []Record {
		cfg := micro()
		cfg.Seed = 18
		cfg.Solve.TimeLimit = time.Hour
		return zeroRuntimes(cfg.RoundingSweep(context.Background(), nil))
	}()
	if len(other) != len(refRecs) {
		t.Fatalf("seed 18 produced %d records, want %d", len(other), len(refRecs))
	}
}

// TestWriteRoundingTable smoke-checks the table renderer over a real
// micro sweep: one row per flexibility step, finite medians.
func TestWriteRoundingTable(t *testing.T) {
	cfg := micro()
	cfg.Certify = true
	cfg.Counters = &Counters{}
	recs := cfg.RoundingSweep(context.Background(), nil)
	for _, r := range recs {
		if r.Algo == "rounding" && r.Feasible && !r.Certified {
			t.Fatalf("flex=%v seed=%d: feasible rounding record not certified", r.FlexMin, r.Seed)
		}
	}
	var buf bytes.Buffer
	WriteRoundingTable(&buf, recs)
	out := buf.String()
	if !strings.Contains(out, "obj_ratio") || !strings.Contains(out, "fallback") {
		t.Fatalf("table missing columns:\n%s", out)
	}
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 0 && line[0] == ' ' && !strings.Contains(line, "flex_min") {
			rows++
		}
	}
	if rows != len(cfg.FlexMinutes) {
		t.Fatalf("%d table rows, want one per flexibility step (%d):\n%s", rows, len(cfg.FlexMinutes), out)
	}
}
