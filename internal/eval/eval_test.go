package eval

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"tvnep/internal/core"
	"tvnep/internal/model"
	"tvnep/internal/workload"
)

// micro returns a configuration small enough for unit tests.
func micro() Config {
	wl := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 3, StarLeaves: 1,
		DemandLow: 0.5, DemandHigh: 1.5,
		MeanInterArr: 1, WeibullShape: 2, WeibullScale: 2,
	}
	return Config{
		Workload:    wl,
		FlexMinutes: []float64{0, 120},
		Seeds:       []int64{1, 2},
		Solve:       model.SolveOptions{TimeLimit: 15 * time.Second},
	}
}

func TestAccessControlSweepCSigma(t *testing.T) {
	cfg := micro()
	recs := cfg.AccessControlSweep(context.Background(), []core.Formulation{core.CSigma}, nil)
	if len(recs) != 4 {
		t.Fatalf("%d records, want 4", len(recs))
	}
	for _, r := range recs {
		if !r.Optimal {
			t.Fatalf("flex=%v seed=%d not optimal (gap %v)", r.FlexMin, r.Seed, r.Gap)
		}
		if !r.Feasible {
			t.Fatalf("flex=%v seed=%d solution failed the independent checker", r.FlexMin, r.Seed)
		}
	}
	// Flexibility can only help: for each seed, value at 120 ≥ value at 0.
	byKey := map[[2]int64]float64{}
	for _, r := range recs {
		byKey[[2]int64{int64(r.FlexMin), r.Seed}] = r.Value
	}
	for _, seed := range cfg.Seeds {
		if byKey[[2]int64{120, seed}] < byKey[[2]int64{0, seed}]-1e-6 {
			t.Fatalf("seed %d: objective decreased with flexibility", seed)
		}
	}
}

func TestGreedySweepAndFigure7(t *testing.T) {
	cfg := micro()
	recs := cfg.GreedySweep(context.Background(), nil)
	if len(recs) != 8 { // 2 flex × 2 seeds × {opt, greedy}
		t.Fatalf("%d records, want 8", len(recs))
	}
	series := Figure7(recs, cfg)
	if len(series) != 1 {
		t.Fatalf("%d series", len(series))
	}
	for i := range series[0].X {
		sm := series[0].Summaries[i]
		if sm.N == 0 {
			t.Fatalf("flex %v: no paired samples", series[0].X[i])
		}
		if sm.Min < -1e-6 {
			t.Fatalf("greedy beat the optimum: min gap %v%%", sm.Min)
		}
	}
}

func TestObjectivesSweepAndFigures56(t *testing.T) {
	cfg := micro()
	recs := cfg.ObjectivesSweep(context.Background(), nil)
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	for _, r := range recs {
		if r.Obj == core.AccessControl {
			t.Fatal("access-control record in objectives sweep")
		}
	}
	f5 := Figure5(recs, cfg)
	f6 := Figure6(recs, cfg)
	if len(f5) != 3 || len(f6) != 3 {
		t.Fatalf("figure 5/6 series counts %d/%d, want 3/3", len(f5), len(f6))
	}
}

func TestFigures348FromSyntheticRecords(t *testing.T) {
	cfg := micro()
	mk := func(flex float64, seed int64, f core.Formulation, val float64, acc int, optimal bool, gap float64, rt time.Duration) Record {
		return Record{FlexMin: flex, Seed: seed, Form: f, Obj: core.AccessControl,
			Algo: "mip", Value: val, Accepted: acc, Optimal: optimal, Gap: gap, Runtime: rt}
	}
	recs := []Record{
		mk(0, 1, core.CSigma, 10, 2, true, 0, time.Second),
		mk(0, 2, core.CSigma, 20, 3, true, 0, 2*time.Second),
		mk(120, 1, core.CSigma, 15, 3, true, 0, 3*time.Second),
		mk(120, 2, core.CSigma, 30, 4, false, 0.25, cfg.Solve.TimeLimit),
		mk(0, 1, core.Delta, 10, 2, false, math.Inf(1), cfg.Solve.TimeLimit),
	}
	f3 := Figure3(recs, cfg)
	if len(f3) != 3 {
		t.Fatalf("figure 3: %d series", len(f3))
	}
	// cΣ series is the third; at flex 120 one solve hit the limit → max
	// equals the limit.
	cs := f3[2]
	if cs.Summaries[1].Max != cfg.Solve.TimeLimit.Seconds() {
		t.Fatalf("figure 3 cΣ max = %v, want %v", cs.Summaries[1].Max, cfg.Solve.TimeLimit.Seconds())
	}
	f4 := Figure4(recs, cfg)
	// Δ at flex 0 has no solution → sentinel 1e6.
	if f4[0].Summaries[0].Max != 1e6 {
		t.Fatalf("figure 4 Δ sentinel missing: %v", f4[0].Summaries[0].Max)
	}
	f8 := Figure8(recs, cfg)
	if f8[0].Summaries[0].Mean != 2.5 {
		t.Fatalf("figure 8 mean accepted = %v, want 2.5", f8[0].Summaries[0].Mean)
	}
	f9 := Figure9(recs, cfg)
	// Seed 1: (15−10)/10 = 50%; seed 2: (30−20)/20 = 50%.
	if math.Abs(f9[0].Summaries[1].Median-50) > 1e-9 {
		t.Fatalf("figure 9 median = %v, want 50", f9[0].Summaries[1].Median)
	}
	// At flex 0 the improvement is 0 by definition.
	if f9[0].Summaries[0].Max != 0 {
		t.Fatalf("figure 9 at flex 0 = %v, want 0", f9[0].Summaries[0].Max)
	}
}

func TestWriteSeries(t *testing.T) {
	var buf bytes.Buffer
	cfg := micro()
	recs := []Record{{FlexMin: 0, Seed: 1, Form: core.CSigma, Obj: core.AccessControl, Algo: "mip", Accepted: 2}}
	WriteSeries(&buf, "figure 8", Figure8(recs, cfg))
	out := buf.String()
	if !strings.Contains(out, "# figure 8") || !strings.Contains(out, "flex_min") {
		t.Fatalf("output missing headers:\n%s", out)
	}
}

func TestDefaultAndPaperConfigs(t *testing.T) {
	d := Default()
	if len(d.FlexMinutes) == 0 || len(d.Seeds) == 0 || d.Solve.TimeLimit <= 0 {
		t.Fatal("default config incomplete")
	}
	p := Paper()
	if p.Workload.NumRequests != 20 || len(p.FlexMinutes) != 11 || len(p.Seeds) != 24 {
		t.Fatalf("paper config wrong: %+v", p)
	}
	if p.FlexMinutes[10] != 300 {
		t.Fatalf("paper flex max = %v, want 300", p.FlexMinutes[10])
	}
}
