// Package linalg provides the small dense linear-algebra kernel used by the
// LP solver: row-major dense matrices, LU factorization with partial
// pivoting, triangular solves and explicit inversion. It is deliberately
// minimal — the simplex code maintains an explicit basis inverse and only
// needs refactorization and solve primitives.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or inversion encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// denseSingTol is the pivot magnitude below which the LU factorization
// declares the matrix numerically singular.
const denseSingTol = 1e-13

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j] = element (i,j)
}

// NewDense allocates a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes y = M·x. y must have length Rows, x length Cols.
func (m *Dense) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("linalg: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// MulVecTrans computes y = Mᵀ·x. x must have length Rows, y length Cols.
func (m *Dense) MulVecTrans(x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("linalg: MulVecTrans dimension mismatch")
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += xi * v
		}
	}
}

// LU is an LU factorization with partial pivoting: P·A = L·U, stored packed
// in-place (unit lower triangle implicit).
type LU struct {
	n    int
	lu   *Dense
	piv  []int // row permutation: row i of PA is row piv[i] of A
	sign int
}

// Factorize computes the LU decomposition of the square matrix a.
// a is not modified.
func Factorize(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Factorize needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{n: n, lu: a.Clone(), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Partial pivot: largest |entry| in column k at/below diagonal.
		p, best := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > best {
				p, best = i, a
			}
		}
		if best < denseSingTol {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b, writing the result into x (which may alias b).
func (f *LU) Solve(b, x []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	// Apply permutation: y = P·b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b[f.piv[i]]
	}
	// Forward substitution L·z = y (unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := y[i]
		for j := 0; j < i; j++ {
			s -= row[j] * y[j]
		}
		y[i] = s
	}
	// Back substitution U·x = z.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * y[j]
		}
		y[i] = s / row[i]
	}
	copy(x, y)
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Inverse computes A⁻¹ using batched triangular solves over whole rows
// (much faster than n column-wise Solve calls: contiguous memory, no
// per-column allocation).
func (f *LU) Inverse() *Dense {
	n := f.n
	// Z = P·I: row i of Z is unit vector e_{piv[i]}.
	z := NewDense(n, n)
	for i := 0; i < n; i++ {
		z.Set(i, f.piv[i], 1)
	}
	// Forward substitution L·W = Z (unit diagonal), row-wise.
	for i := 1; i < n; i++ {
		li := f.lu.Row(i)
		zi := z.Row(i)
		for j := 0; j < i; j++ {
			if m := li[j]; m != 0 {
				Axpy(-m, z.Row(j), zi)
			}
		}
	}
	// Back substitution U·X = W, row-wise.
	for i := n - 1; i >= 0; i-- {
		ui := f.lu.Row(i)
		zi := z.Row(i)
		for j := n - 1; j > i; j-- {
			if m := ui[j]; m != 0 {
				Axpy(-m, z.Row(j), zi)
			}
		}
		Scale(1/ui[i], zi)
	}
	return z
}

// Invert returns a⁻¹ or ErrSingular.
func Invert(a *Dense) (*Dense, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse(), nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y ← y + alpha·x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale computes x ← alpha·x.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// NormInf returns max_i |x_i|.
func NormInf(x []float64) float64 {
	max := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}
