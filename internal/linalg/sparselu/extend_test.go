package sparselu

import (
	"math"
	"math/rand"
	"testing"
)

// borderedColumns builds the explicit column form of [[B,0],[C,D]] from the
// base columns, border rows (over basis positions) and diagonal.
func borderedColumns(m, k int, colIdx [][]int32, colVal [][]float64,
	bIdx [][]int32, bVal [][]float64, diag []float64) ([][]int32, [][]float64) {
	mk := m + k
	outIdx := make([][]int32, mk)
	outVal := make([][]float64, mk)
	for p := 0; p < m; p++ {
		outIdx[p] = append(outIdx[p], colIdx[p]...)
		outVal[p] = append(outVal[p], colVal[p]...)
	}
	for i := 0; i < k; i++ {
		for e, p := range bIdx[i] {
			outIdx[p] = append(outIdx[p], int32(m+i))
			outVal[p] = append(outVal[p], bVal[i][e])
		}
		outIdx[m+i] = append(outIdx[m+i], int32(m+i))
		outVal[m+i] = append(outVal[m+i], diag[i])
	}
	return outIdx, outVal
}

// randBorder draws k sparse border rows over m basis positions.
func randBorder(rng *rand.Rand, m, k int) ([][]int32, [][]float64, []float64) {
	bIdx := make([][]int32, k)
	bVal := make([][]float64, k)
	diag := make([]float64, k)
	for i := 0; i < k; i++ {
		for p := 0; p < m; p++ {
			if rng.Float64() < 0.3 {
				bIdx[i] = append(bIdx[i], int32(p))
				bVal[i] = append(bVal[i], rng.NormFloat64())
			}
		}
		diag[i] = -1 // the slack coefficient of an appended LP row
	}
	return bIdx, bVal, diag
}

// checkAgainst verifies that f's Ftran/Btran agree with a fresh
// factorization of the explicit column form.
func checkAgainst(t *testing.T, trial int, f *Factors, m int, colIdx [][]int32, colVal [][]float64, rng *rand.Rand) {
	t.Helper()
	fresh, err := Factorize(m, colIdx, colVal)
	if err != nil {
		t.Fatalf("trial %d: fresh factorization: %v", trial, err)
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1 := append([]float64(nil), b...)
	x2 := append([]float64(nil), b...)
	f.Ftran(x1)
	fresh.Ftran(x2)
	if d := maxDiff(x1, x2); d > 1e-8 {
		t.Fatalf("trial %d: extended ftran differs from fresh by %v", trial, d)
	}
	y1 := append([]float64(nil), b...)
	y2 := append([]float64(nil), b...)
	f.Btran(y1)
	fresh.Btran(y2)
	if d := maxDiff(y1, y2); d > 1e-8 {
		t.Fatalf("trial %d: extended btran differs from fresh by %v", trial, d)
	}
}

func TestExtendMatchesFreshFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(30)
		k := 1 + rng.Intn(5)
		colIdx, colVal := randBasis(rng, m, 0.2)
		f, err := Factorize(m, colIdx, colVal)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Half the trials extend a factorization that already carries eta
		// updates (the mid-solve case: pivots happened since refactorization).
		if trial%2 == 1 {
			applyRandomUpdates(t, rng, f, m, colIdx, colVal, 4)
		}
		bIdx, bVal, diag := randBorder(rng, m, k)
		g, err := f.Extend(k, bIdx, bVal, diag)
		if err != nil {
			t.Fatalf("trial %d: extend: %v", trial, err)
		}
		if g.M() != m+k {
			t.Fatalf("trial %d: M() = %d, want %d", trial, g.M(), m+k)
		}
		fullIdx, fullVal := borderedColumns(m, k, colIdx, colVal, bIdx, bVal, diag)
		checkAgainst(t, trial, g, m+k, fullIdx, fullVal, rng)

		// Updates must keep working on the extended factors.
		applyRandomUpdates(t, rng, g, m+k, fullIdx, fullVal, 3)
		checkAgainst(t, trial, g, m+k, fullIdx, fullVal, rng)

		// And a second extension must stack on top of the first.
		bIdx2, bVal2, diag2 := randBorder(rng, m+k, 2)
		g2, err := g.Extend(2, bIdx2, bVal2, diag2)
		if err != nil {
			t.Fatalf("trial %d: second extend: %v", trial, err)
		}
		fullIdx2, fullVal2 := borderedColumns(m+k, 2, fullIdx, fullVal, bIdx2, bVal2, diag2)
		checkAgainst(t, trial, g2, m+k+2, fullIdx2, fullVal2, rng)
	}
}

// applyRandomUpdates replaces a few basis columns via eta updates, mirroring
// the replacements into the explicit column form.
func applyRandomUpdates(t *testing.T, rng *rand.Rand, f *Factors, m int, colIdx [][]int32, colVal [][]float64, count int) {
	t.Helper()
	for rep := 0; rep < count; rep++ {
		pos := rng.Intn(m)
		newIdx := []int32{}
		newVal := []float64{}
		for r := 0; r < m; r++ {
			v := rng.NormFloat64()
			if r == pos {
				v += 3 // keep the pivot position well-conditioned
			}
			if v != 0 {
				newIdx = append(newIdx, int32(r))
				newVal = append(newVal, v)
			}
		}
		alpha := make([]float64, m)
		for e, r := range newIdx {
			alpha[r] = newVal[e]
		}
		f.Ftran(alpha)
		if math.Abs(alpha[pos]) < 1e-6 {
			continue // unlucky pivot; skip this replacement
		}
		f.Update(alpha, pos)
		colIdx[pos], colVal[pos] = newIdx, newVal
	}
}

func TestExtendReceiverUnmodified(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := 12
	colIdx, colVal := randBasis(rng, m, 0.25)
	f, err := Factorize(m, colIdx, colVal)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	before := append([]float64(nil), b...)
	f.Ftran(before)

	bIdx, bVal, diag := randBorder(rng, m, 3)
	if _, err := f.Extend(3, bIdx, bVal, diag); err != nil {
		t.Fatal(err)
	}
	after := append([]float64(nil), b...)
	f.Ftran(after)
	if d := maxDiff(before, after); d != 0 {
		t.Fatalf("receiver solve changed by %v after Extend", d)
	}
	if f.M() != m {
		t.Fatalf("receiver dimension changed to %d", f.M())
	}
}

func TestExtendZeroDiagSingular(t *testing.T) {
	colIdx := [][]int32{{0}}
	colVal := [][]float64{{1}}
	f, err := Factorize(1, colIdx, colVal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Extend(1, [][]int32{{0}}, [][]float64{{1}}, []float64{0}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestExtendEmptyBase(t *testing.T) {
	f, err := Factorize(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.Extend(2, [][]int32{nil, nil}, [][]float64{nil, nil}, []float64{-1, -1})
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{3, -4}
	g.Ftran(v)
	if v[0] != -3 || v[1] != 4 {
		t.Fatalf("ftran on diag(-1) = %v, want [-3 4]", v)
	}
}
