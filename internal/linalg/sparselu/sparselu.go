// Package sparselu provides the sparse basis kernel of the LP solver: an LU
// factorization of the (sparse, square) simplex basis with a Markowitz-style
// fill-reducing pivot order and threshold partial pivoting, forward/backward
// solves (FTRAN/BTRAN) that skip structurally-zero positions, and eta-file
// (product-form-of-the-inverse) updates so that a pivot costs O(nnz) instead
// of a refactorization.
//
// The factorization is left-looking (Gilbert–Peierls style): columns are
// eliminated in a static least-count order — the column half of the Markowitz
// count — and within each column the pivot row is chosen among entries
// within a threshold of the largest magnitude, preferring the row with the
// smallest static count (the row half). All choices are deterministic, so
// repeated factorizations of the same basis are bit-for-bit identical.
//
// Both triangular factors are additionally mirrored in transposed (row-major)
// form so that Btran runs as a pair of scatter-style solves that skip
// structurally-zero positions — the unit right-hand sides of the simplex
// pivot row (BTRAN of e_r) touch only the rows actually reachable in the
// dependency graph instead of all m elimination steps.
//
// Allocation discipline: the hot simplex loop must not allocate. Eta vectors
// live in per-Factors append-only arenas (amortized zero-allocation growth),
// refactorizations reuse the symbolic scratch of a caller-owned Workspace and
// the storage of the destination Factors (FactorizeInto), and bordered
// extensions can likewise reuse a destination (ExtendInto). The convenience
// wrappers Factorize, Extend and Clone allocate fresh storage.
package sparselu

import (
	"errors"
	"math"
	"sort"
)

// ErrSingular is returned when the basis matrix is numerically singular.
var ErrSingular = errors.New("sparselu: singular basis")

const (
	// singTol is the absolute magnitude below which a pivot candidate is
	// considered zero (matches the dense kernel this package replaced).
	singTol = 1e-13
	// threshRel is the relative threshold for partial pivoting: any row
	// within threshRel of the column's largest magnitude is pivot-eligible,
	// and the sparsest such row is chosen.
	threshRel = 0.1
	// dropTol drops negligible fill-in from L, U and eta vectors.
	dropTol = 1e-12
)

// eta is one product-form update: the basis column at position r was
// replaced, with FTRAN'd entering column alpha. The off-pivot entries live in
// the owning Factors' arena at [off, off+n) so that updates never allocate in
// steady state and copies relocate cleanly.
type eta struct {
	r   int32
	n   int32
	off int32
	piv float64 // alpha[r]
}

// Factors is a factorized basis B = L·U (modulo permutations) together with
// an eta file of post-factorization pivots. The base factors are immutable
// after Factorize; Update appends etas. Not safe for concurrent use (the
// solves share scratch space).
type Factors struct {
	m int

	order  []int32 // elimination step k processed basis position order[k]
	rowPiv []int32 // original row pivotal at step k

	// L in column form per elimination step (unit diagonal implicit);
	// row indices are original row indices.
	lptr []int32
	lrow []int32
	lval []float64

	// U in column form per elimination step; row indices are earlier step
	// numbers. The diagonal is stored separately.
	uptr  []int32
	urow  []int32
	uval  []float64
	udiag []float64

	// Transposed mirrors for the hyper-sparse Btran. U by row step: for step
	// j, the steps k > j with U[j,k] ≠ 0. L by pivotal step: for step k, the
	// earlier steps k' whose L column holds an entry at row rowPiv[k].
	urptr []int32
	urcol []int32
	urval []float64
	lrptr []int32
	lrcol []int32
	lrval []float64

	etas    []eta
	etaIdx  []int32   // arena backing eta off-pivot indices
	etaVal  []float64 // arena backing eta off-pivot values
	etaNNZ  int
	scratch []float64 // length m, used by Ftran/Btran
}

// Workspace holds the reusable symbolic and numeric scratch of the
// factorization and extension kernels. A Workspace may be reused across any
// number of FactorizeInto/ExtendInto calls (growing on demand, never
// shrinking) but must not be shared between concurrent calls.
type Workspace struct {
	w       []float64 // dense accumulator for the current column
	rowPos  []int32   // original row → elimination step, or -1
	visited []bool
	post    []int32 // DFS postorder (reverse = topological)
	stack   []int32 // DFS stack of rows
	estate  []int32 // per-row DFS edge cursor
	rcount  []int32 // static per-row entry counts
	cnt     []int32 // transpose-mirror counting scratch
	xbuf    []float64
}

// NewWorkspace returns an empty workspace; storage grows on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

func (ws *Workspace) grow(m int) {
	if cap(ws.w) < m {
		ws.w = make([]float64, m)
		ws.rowPos = make([]int32, m)
		ws.visited = make([]bool, m)
		ws.estate = make([]int32, m)
		ws.rcount = make([]int32, m)
		ws.cnt = make([]int32, m+1)
		ws.post = growI32(ws.post, m)[:0]
		ws.stack = growI32(ws.stack, m)[:0]
		return
	}
	ws.w = ws.w[:m]
	ws.rowPos = ws.rowPos[:m]
	ws.visited = ws.visited[:m]
	ws.estate = ws.estate[:m]
	ws.rcount = ws.rcount[:m]
	ws.cnt = ws.cnt[:m+1]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Factorize computes the sparse LU factorization of the m×m basis whose
// column at position p has row indices colIdx[p] and values colVal[p].
// The input slices are not retained. Hot callers should hold a Workspace and
// a destination and use FactorizeInto instead.
func Factorize(m int, colIdx [][]int32, colVal [][]float64) (*Factors, error) {
	f := &Factors{}
	if err := FactorizeInto(f, NewWorkspace(), m, colIdx, colVal); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorizeInto computes the sparse LU factorization of the m×m basis into
// dst, reusing dst's storage when its capacity allows. dst must not be
// shared with (cloned into, copied from, handed off to) any other live
// Factors: its backing arrays are overwritten. On error dst is left in an
// unspecified state and must not be used for solves.
func FactorizeInto(dst *Factors, ws *Workspace, m int, colIdx [][]int32, colVal [][]float64) error {
	f := dst
	f.m = m
	f.order = growI32(f.order, m)
	f.rowPiv = growI32(f.rowPiv, m)
	f.lptr = growI32(f.lptr, m+1)
	f.uptr = growI32(f.uptr, m+1)
	f.udiag = growF64(f.udiag, m)
	f.lrow = f.lrow[:0]
	f.lval = f.lval[:0]
	f.urow = f.urow[:0]
	f.uval = f.uval[:0]
	f.etas = f.etas[:0]
	f.etaIdx = f.etaIdx[:0]
	f.etaVal = f.etaVal[:0]
	f.etaNNZ = 0
	f.scratch = growF64(f.scratch, m)
	if m == 0 {
		f.lptr[0], f.uptr[0] = 0, 0
		f.buildMirrors(ws)
		return nil
	}
	ws.grow(m)

	// Static Markowitz counts: column elimination order by ascending nnz
	// (ties by position, for determinism) and per-row entry counts for the
	// pivot-row tie-break.
	for p := 0; p < m; p++ {
		f.order[p] = int32(p)
	}
	sort.SliceStable(f.order, func(a, b int) bool {
		return len(colIdx[f.order[a]]) < len(colIdx[f.order[b]])
	})
	rcount := ws.rcount
	for r := range rcount {
		rcount[r] = 0
	}
	for p := 0; p < m; p++ {
		for _, r := range colIdx[p] {
			rcount[r]++
		}
	}

	w := ws.w
	rowPos := ws.rowPos
	for r := 0; r < m; r++ {
		w[r] = 0
		rowPos[r] = -1
		ws.visited[r] = false
	}
	// Gilbert–Peierls workspaces: the DFS discovers the nonzero pattern of
	// L_partial⁻¹·A_j so both the triangular solve and the pivot search
	// touch only (fill-in) nonzeros instead of all m rows.
	visited := ws.visited
	post := ws.post[:0]
	stack := ws.stack[:0]
	estate := ws.estate

	f.lptr[0], f.uptr[0] = 0, 0
	for k := 0; k < m; k++ {
		j := f.order[k]
		// Symbolic phase: reachable rows from the column's pattern through
		// the already-computed L columns.
		post = post[:0]
		for _, r0 := range colIdx[j] {
			if visited[r0] {
				continue
			}
			stack = append(stack, r0)
			visited[r0] = true
			if t := rowPos[r0]; t >= 0 {
				estate[r0] = f.lptr[t]
			}
			for len(stack) > 0 {
				r := stack[len(stack)-1]
				t := rowPos[r]
				advanced := false
				if t >= 0 {
					for e := estate[r]; e < f.lptr[t+1]; e++ {
						rr := f.lrow[e]
						if !visited[rr] {
							estate[r] = e + 1
							visited[rr] = true
							if tt := rowPos[rr]; tt >= 0 {
								estate[rr] = f.lptr[tt]
							}
							stack = append(stack, rr)
							advanced = true
							break
						}
					}
				}
				if !advanced {
					post = append(post, r)
					stack = stack[:len(stack)-1]
				}
			}
		}
		// Numeric phase: scatter, then apply L columns in topological order.
		for t, r := range colIdx[j] {
			w[r] += colVal[j][t]
		}
		for i := len(post) - 1; i >= 0; i-- {
			r := post[i]
			t := rowPos[r]
			if t < 0 {
				continue
			}
			piv := w[r]
			if piv == 0 {
				continue
			}
			for e := f.lptr[t]; e < f.lptr[t+1]; e++ {
				w[f.lrow[e]] -= f.lval[e] * piv
			}
		}
		// Threshold partial pivoting over not-yet-pivotal rows of the
		// pattern: eligible within threshRel of the largest magnitude,
		// sparsest static row count wins (deterministic tie-break on the
		// DFS pattern order).
		maxAbs := 0.0
		for _, r := range post {
			if rowPos[r] < 0 {
				if a := math.Abs(w[r]); a > maxAbs {
					maxAbs = a
				}
			}
		}
		if maxAbs < singTol {
			// Clear the scatter state so the workspace stays reusable.
			for _, r := range post {
				w[r] = 0
				visited[r] = false
			}
			ws.post, ws.stack = post[:0], stack[:0]
			return ErrSingular
		}
		thresh := threshRel * maxAbs
		pr := int32(-1)
		for _, r := range post {
			if rowPos[r] >= 0 || math.Abs(w[r]) < thresh {
				continue
			}
			if pr == -1 || rcount[r] < rcount[pr] {
				pr = r
			}
		}
		piv := w[pr]
		// Emit the column: U entries at already-pivotal rows, L multipliers
		// below, clearing the accumulator and visit marks as we go.
		for _, r := range post {
			v := w[r]
			w[r] = 0
			visited[r] = false
			if v == 0 {
				continue
			}
			switch {
			case rowPos[r] >= 0:
				if math.Abs(v) > dropTol {
					f.urow = append(f.urow, rowPos[r])
					f.uval = append(f.uval, v)
				}
			case r != pr:
				if lv := v / piv; math.Abs(lv) > dropTol {
					f.lrow = append(f.lrow, int32(r))
					f.lval = append(f.lval, lv)
				}
			}
		}
		f.udiag[k] = piv
		f.rowPiv[k] = pr
		rowPos[pr] = int32(k)
		f.lptr[k+1] = int32(len(f.lrow))
		f.uptr[k+1] = int32(len(f.urow))
	}
	ws.post, ws.stack = post[:0], stack[:0]
	f.buildMirrors(ws)
	return nil
}

// buildMirrors derives the transposed (row-major) views of L and U consumed
// by the hyper-sparse Btran. U is mirrored by row step (urow entries are step
// numbers); L is mirrored by the step at which each entry's row becomes
// pivotal, which is exactly the order the backward Lᵀ scatter finalizes them.
func (f *Factors) buildMirrors(ws *Workspace) {
	m := f.m
	f.urptr = growI32(f.urptr, m+1)
	f.lrptr = growI32(f.lrptr, m+1)
	f.urcol = growI32(f.urcol, len(f.urow))
	f.urval = growF64(f.urval, len(f.uval))
	f.lrcol = growI32(f.lrcol, len(f.lrow))
	f.lrval = growF64(f.lrval, len(f.lval))
	if m == 0 {
		f.urptr[0], f.lrptr[0] = 0, 0
		return
	}
	if ws == nil || cap(ws.cnt) < m+1 {
		ws = &Workspace{cnt: make([]int32, m+1)}
	}
	cnt := ws.cnt[:m+1]

	// U mirror: count entries per row step, then scatter (k ascending keeps
	// each row's column list sorted ascending — deterministic).
	for i := range cnt {
		cnt[i] = 0
	}
	for _, j := range f.urow {
		cnt[j+1]++
	}
	for i := 0; i < m; i++ {
		cnt[i+1] += cnt[i]
	}
	copy(f.urptr, cnt[:m+1])
	for k := 0; k < m; k++ {
		for e := f.uptr[k]; e < f.uptr[k+1]; e++ {
			j := f.urow[e]
			f.urcol[cnt[j]] = int32(k)
			f.urval[cnt[j]] = f.uval[e]
			cnt[j]++
		}
	}

	// L mirror: entries keyed by the step at which their row becomes
	// pivotal (ws.estate doubles as the row→step map; the DFS is done
	// with it by the time mirrors are built).
	for i := range cnt {
		cnt[i] = 0
	}
	steps := ws.estate
	if cap(steps) < m {
		steps = make([]int32, m)
		ws.estate = steps
	}
	steps = steps[:m]
	for k := 0; k < m; k++ {
		steps[f.rowPiv[k]] = int32(k)
	}
	for _, r := range f.lrow {
		cnt[steps[r]+1]++
	}
	for i := 0; i < m; i++ {
		cnt[i+1] += cnt[i]
	}
	copy(f.lrptr, cnt[:m+1])
	for k := 0; k < m; k++ {
		for e := f.lptr[k]; e < f.lptr[k+1]; e++ {
			s := steps[f.lrow[e]]
			f.lrcol[cnt[s]] = int32(k)
			f.lrval[cnt[s]] = f.lval[e]
			cnt[s]++
		}
	}
}

// M returns the dimension of the factorized basis.
func (f *Factors) M() int { return f.m }

// NumEtas reports the number of eta updates applied since factorization.
func (f *Factors) NumEtas() int { return len(f.etas) }

// EtaNNZ reports the total number of stored eta entries; the refactorization
// policy uses it to bound update-file growth on dense pivot columns.
//
//hot:path
func (f *Factors) EtaNNZ() int { return f.etaNNZ }

// Update appends the product-form eta for a pivot that replaced the basis
// column at position r, where alpha = B⁻¹·(entering column) is the FTRAN'd
// entering column. alpha[r] must be nonzero (the simplex ratio test
// guarantees a pivot magnitude above its tolerance). Steady-state updates
// are allocation-free once the arena capacity has warmed up.
//
//hot:path
func (f *Factors) Update(alpha []float64, r int) {
	off := int32(len(f.etaIdx))
	for i, v := range alpha {
		if i != r && math.Abs(v) > dropTol {
			f.etaIdx = append(f.etaIdx, int32(i)) //lint:allow hotalloc -- amortized eta-arena growth; compacted at refactorization
			f.etaVal = append(f.etaVal, v)
		}
	}
	n := int32(len(f.etaIdx)) - off
	f.etas = append(f.etas, eta{r: int32(r), n: n, off: off, piv: alpha[r]}) //lint:allow hotalloc -- amortized eta-file growth; compacted at refactorization
	f.etaNNZ += int(n) + 1
}

// Ftran solves B·x = v in place: on input v is a right-hand side indexed by
// row, on output it holds x indexed by basis position. Structurally-zero
// pivot positions are skipped, so sparse right-hand sides (unit columns,
// sparse entering columns) cost far less than a dense solve.
//
//hot:path
func (f *Factors) Ftran(v []float64) {
	m := f.m
	// L solve (forward, scatter form: skip zero pivots).
	for k := 0; k < m; k++ {
		val := v[f.rowPiv[k]]
		if val == 0 {
			continue
		}
		for e := f.lptr[k]; e < f.lptr[k+1]; e++ {
			v[f.lrow[e]] -= f.lval[e] * val
		}
	}
	// U solve (backward, scatter form), result per elimination step.
	x := f.scratch
	for k := m - 1; k >= 0; k-- {
		t := v[f.rowPiv[k]]
		if t != 0 {
			t /= f.udiag[k]
			for e := f.uptr[k]; e < f.uptr[k+1]; e++ {
				v[f.rowPiv[f.urow[e]]] -= f.uval[e] * t
			}
		}
		x[k] = t
	}
	// Permute steps back to basis positions.
	for k := 0; k < m; k++ {
		v[f.order[k]] = x[k]
	}
	// Apply the eta file in pivot order: B = B₀·E₁⋯E_k, so
	// x = E_k⁻¹·…·E₁⁻¹·B₀⁻¹·v.
	for i := range f.etas {
		e := &f.etas[i]
		pv := v[e.r]
		if pv == 0 {
			continue
		}
		pv /= e.piv
		idx := f.etaIdx[e.off : e.off+e.n]
		val := f.etaVal[e.off : e.off+e.n]
		for t, ix := range idx {
			v[ix] -= val[t] * pv
		}
		v[e.r] = pv
	}
}

// Btran solves Bᵀ·y = v in place: on input v is indexed by basis position
// (e.g. basic costs), on output it holds y indexed by row. Both triangular
// solves run in scatter form over the transposed mirrors and skip
// structurally-zero steps, so the unit right-hand sides of the pivot-row
// BTRAN touch only the reachable part of the dependency graph.
//
//hot:path
func (f *Factors) Btran(v []float64) {
	// Eta transposes in reverse pivot order.
	for i := len(f.etas) - 1; i >= 0; i-- {
		e := &f.etas[i]
		s := v[e.r]
		idx := f.etaIdx[e.off : e.off+e.n]
		val := f.etaVal[e.off : e.off+e.n]
		for t, ix := range idx {
			s -= val[t] * v[ix]
		}
		v[e.r] = s / e.piv
	}
	m := f.m
	// Column permutation, then Uᵀ solve (forward in elimination steps;
	// scatter form over the row mirror, skipping zero steps).
	z := f.scratch
	for k := 0; k < m; k++ {
		z[k] = v[f.order[k]]
	}
	for k := 0; k < m; k++ {
		t := z[k]
		if t == 0 {
			continue
		}
		t /= f.udiag[k]
		z[k] = t
		for e := f.urptr[k]; e < f.urptr[k+1]; e++ {
			z[f.urcol[e]] -= f.urval[e] * t
		}
	}
	// Lᵀ solve (backward; scatter form over the step-keyed mirror: once
	// step k is final, its value feeds the earlier steps whose L columns
	// reference row rowPiv[k]).
	for k := m - 1; k >= 0; k-- {
		t := z[k]
		v[f.rowPiv[k]] = t
		if t == 0 {
			continue
		}
		for e := f.lrptr[k]; e < f.lrptr[k+1]; e++ {
			z[f.lrcol[e]] -= f.lrval[e] * t
		}
	}
}

// CopyInto deep-copies f into dst, reusing dst's storage when capacity
// allows. dst afterwards shares nothing with f: either side may be updated,
// refactorized into, or discarded without affecting the other. This is the
// allocation-free warm-start adoption path.
func (f *Factors) CopyInto(dst *Factors) {
	dst.m = f.m
	dst.order = append(growI32(dst.order, len(f.order))[:0], f.order...)
	dst.rowPiv = append(growI32(dst.rowPiv, len(f.rowPiv))[:0], f.rowPiv...)
	dst.lptr = append(growI32(dst.lptr, len(f.lptr))[:0], f.lptr...)
	dst.lrow = append(growI32(dst.lrow, len(f.lrow))[:0], f.lrow...)
	dst.lval = append(growF64(dst.lval, len(f.lval))[:0], f.lval...)
	dst.uptr = append(growI32(dst.uptr, len(f.uptr))[:0], f.uptr...)
	dst.urow = append(growI32(dst.urow, len(f.urow))[:0], f.urow...)
	dst.uval = append(growF64(dst.uval, len(f.uval))[:0], f.uval...)
	dst.udiag = append(growF64(dst.udiag, len(f.udiag))[:0], f.udiag...)
	dst.urptr = append(growI32(dst.urptr, len(f.urptr))[:0], f.urptr...)
	dst.urcol = append(growI32(dst.urcol, len(f.urcol))[:0], f.urcol...)
	dst.urval = append(growF64(dst.urval, len(f.urval))[:0], f.urval...)
	dst.lrptr = append(growI32(dst.lrptr, len(f.lrptr))[:0], f.lrptr...)
	dst.lrcol = append(growI32(dst.lrcol, len(f.lrcol))[:0], f.lrcol...)
	dst.lrval = append(growF64(dst.lrval, len(f.lrval))[:0], f.lrval...)
	if cap(dst.etas) < len(f.etas) {
		dst.etas = make([]eta, len(f.etas))
	} else {
		dst.etas = dst.etas[:len(f.etas)]
	}
	copy(dst.etas, f.etas)
	dst.etaIdx = append(growI32(dst.etaIdx, len(f.etaIdx))[:0], f.etaIdx...)
	dst.etaVal = append(growF64(dst.etaVal, len(f.etaVal))[:0], f.etaVal...)
	dst.etaNNZ = f.etaNNZ
	dst.scratch = growF64(dst.scratch, f.m)
}

// Clone returns an independent deep copy of f. Hot callers should hold a
// destination and use CopyInto instead.
func (f *Factors) Clone() *Factors {
	out := &Factors{}
	f.CopyInto(out)
	return out
}
