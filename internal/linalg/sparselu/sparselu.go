// Package sparselu provides the sparse basis kernel of the LP solver: an LU
// factorization of the (sparse, square) simplex basis with a Markowitz-style
// fill-reducing pivot order and threshold partial pivoting, forward/backward
// solves (FTRAN/BTRAN) that skip structurally-zero positions, and eta-file
// (product-form-of-the-inverse) updates so that a pivot costs O(nnz) instead
// of a refactorization.
//
// The factorization is left-looking (Gilbert–Peierls style): columns are
// eliminated in a static least-count order — the column half of the Markowitz
// count — and within each column the pivot row is chosen among entries
// within a threshold of the largest magnitude, preferring the row with the
// smallest static count (the row half). All choices are deterministic, so
// repeated factorizations of the same basis are bit-for-bit identical.
package sparselu

import (
	"errors"
	"math"
	"sort"
)

// ErrSingular is returned when the basis matrix is numerically singular.
var ErrSingular = errors.New("sparselu: singular basis")

const (
	// singTol is the absolute magnitude below which a pivot candidate is
	// considered zero (matches the dense kernel this package replaced).
	singTol = 1e-13
	// threshRel is the relative threshold for partial pivoting: any row
	// within threshRel of the column's largest magnitude is pivot-eligible,
	// and the sparsest such row is chosen.
	threshRel = 0.1
	// dropTol drops negligible fill-in from L, U and eta vectors.
	dropTol = 1e-12
)

// eta is one product-form update: the basis column at position r was
// replaced, with FTRAN'd entering column alpha. Applying the inverse of the
// corresponding elementary matrix to a vector costs O(len(idx)).
type eta struct {
	r   int32
	piv float64 // alpha[r]
	idx []int32
	val []float64 // alpha[idx[k]], k != r
}

// Factors is a factorized basis B = L·U (modulo permutations) together with
// an eta file of post-factorization pivots. The base factors are immutable
// after Factorize; Update appends etas. Not safe for concurrent use (the
// solves share scratch space).
type Factors struct {
	m int

	order  []int32 // elimination step k processed basis position order[k]
	rowPiv []int32 // original row pivotal at step k

	// L in column form per elimination step (unit diagonal implicit);
	// row indices are original row indices.
	lptr []int32
	lrow []int32
	lval []float64

	// U in column form per elimination step; row indices are earlier step
	// numbers. The diagonal is stored separately.
	uptr  []int32
	urow  []int32
	uval  []float64
	udiag []float64

	etas   []eta
	etaNNZ int

	scratch []float64 // length m, used by Ftran/Btran
}

// Factorize computes the sparse LU factorization of the m×m basis whose
// column at position p has row indices colIdx[p] and values colVal[p].
// The input slices are not retained.
func Factorize(m int, colIdx [][]int32, colVal [][]float64) (*Factors, error) {
	f := &Factors{
		m:      m,
		order:  make([]int32, m),
		rowPiv: make([]int32, m),
		lptr:   make([]int32, m+1),
		uptr:   make([]int32, m+1),
		udiag:  make([]float64, m),
	}
	if m == 0 {
		return f, nil
	}
	// Static Markowitz counts: column elimination order by ascending nnz
	// (ties by position, for determinism) and per-row entry counts for the
	// pivot-row tie-break.
	for p := 0; p < m; p++ {
		f.order[p] = int32(p)
	}
	sort.SliceStable(f.order, func(a, b int) bool {
		return len(colIdx[f.order[a]]) < len(colIdx[f.order[b]])
	})
	rcount := make([]int32, m)
	for p := 0; p < m; p++ {
		for _, r := range colIdx[p] {
			rcount[r]++
		}
	}

	w := make([]float64, m)    // dense accumulator for the current column
	rowPos := make([]int32, m) // original row → elimination step, or -1
	for r := range rowPos {
		rowPos[r] = -1
	}
	// Gilbert–Peierls workspaces: the DFS discovers the nonzero pattern of
	// L_partial⁻¹·A_j so both the triangular solve and the pivot search
	// touch only (fill-in) nonzeros instead of all m rows.
	visited := make([]bool, m)
	post := make([]int32, 0, m)  // DFS postorder (reverse = topological)
	stack := make([]int32, 0, m) // DFS stack of rows
	estate := make([]int32, m)   // per-row DFS edge cursor

	for k := 0; k < m; k++ {
		j := f.order[k]
		// Symbolic phase: reachable rows from the column's pattern through
		// the already-computed L columns.
		post = post[:0]
		for _, r0 := range colIdx[j] {
			if visited[r0] {
				continue
			}
			stack = append(stack, r0)
			visited[r0] = true
			if t := rowPos[r0]; t >= 0 {
				estate[r0] = f.lptr[t]
			}
			for len(stack) > 0 {
				r := stack[len(stack)-1]
				t := rowPos[r]
				advanced := false
				if t >= 0 {
					for e := estate[r]; e < f.lptr[t+1]; e++ {
						rr := f.lrow[e]
						if !visited[rr] {
							estate[r] = e + 1
							visited[rr] = true
							if tt := rowPos[rr]; tt >= 0 {
								estate[rr] = f.lptr[tt]
							}
							stack = append(stack, rr)
							advanced = true
							break
						}
					}
				}
				if !advanced {
					post = append(post, r)
					stack = stack[:len(stack)-1]
				}
			}
		}
		// Numeric phase: scatter, then apply L columns in topological order.
		for t, r := range colIdx[j] {
			w[r] += colVal[j][t]
		}
		for i := len(post) - 1; i >= 0; i-- {
			r := post[i]
			t := rowPos[r]
			if t < 0 {
				continue
			}
			piv := w[r]
			if piv == 0 {
				continue
			}
			for e := f.lptr[t]; e < f.lptr[t+1]; e++ {
				w[f.lrow[e]] -= f.lval[e] * piv
			}
		}
		// Threshold partial pivoting over not-yet-pivotal rows of the
		// pattern: eligible within threshRel of the largest magnitude,
		// sparsest static row count wins (deterministic tie-break on the
		// DFS pattern order).
		maxAbs := 0.0
		for _, r := range post {
			if rowPos[r] < 0 {
				if a := math.Abs(w[r]); a > maxAbs {
					maxAbs = a
				}
			}
		}
		if maxAbs < singTol {
			return nil, ErrSingular
		}
		thresh := threshRel * maxAbs
		pr := int32(-1)
		for _, r := range post {
			if rowPos[r] >= 0 || math.Abs(w[r]) < thresh {
				continue
			}
			if pr == -1 || rcount[r] < rcount[pr] {
				pr = r
			}
		}
		piv := w[pr]
		// Emit the column: U entries at already-pivotal rows, L multipliers
		// below, clearing the accumulator and visit marks as we go.
		for _, r := range post {
			v := w[r]
			w[r] = 0
			visited[r] = false
			if v == 0 {
				continue
			}
			switch {
			case rowPos[r] >= 0:
				if math.Abs(v) > dropTol {
					f.urow = append(f.urow, rowPos[r])
					f.uval = append(f.uval, v)
				}
			case r != pr:
				if lv := v / piv; math.Abs(lv) > dropTol {
					f.lrow = append(f.lrow, int32(r))
					f.lval = append(f.lval, lv)
				}
			}
		}
		f.udiag[k] = piv
		f.rowPiv[k] = pr
		rowPos[pr] = int32(k)
		f.lptr[k+1] = int32(len(f.lrow))
		f.uptr[k+1] = int32(len(f.urow))
	}
	f.scratch = make([]float64, m)
	return f, nil
}

// M returns the dimension of the factorized basis.
func (f *Factors) M() int { return f.m }

// NumEtas reports the number of eta updates applied since factorization.
func (f *Factors) NumEtas() int { return len(f.etas) }

// EtaNNZ reports the total number of stored eta entries; the refactorization
// policy uses it to bound update-file growth on dense pivot columns.
func (f *Factors) EtaNNZ() int { return f.etaNNZ }

// Update appends the product-form eta for a pivot that replaced the basis
// column at position r, where alpha = B⁻¹·(entering column) is the FTRAN'd
// entering column. alpha[r] must be nonzero (the simplex ratio test
// guarantees a pivot magnitude above its tolerance).
func (f *Factors) Update(alpha []float64, r int) {
	e := eta{r: int32(r), piv: alpha[r]}
	for i, v := range alpha {
		if i != r && math.Abs(v) > dropTol {
			e.idx = append(e.idx, int32(i))
			e.val = append(e.val, v)
		}
	}
	f.etas = append(f.etas, e)
	f.etaNNZ += len(e.idx) + 1
}

// Ftran solves B·x = v in place: on input v is a right-hand side indexed by
// row, on output it holds x indexed by basis position. Structurally-zero
// pivot positions are skipped, so sparse right-hand sides (unit columns,
// sparse entering columns) cost far less than a dense solve.
func (f *Factors) Ftran(v []float64) {
	m := f.m
	// L solve (forward, scatter form: skip zero pivots).
	for k := 0; k < m; k++ {
		val := v[f.rowPiv[k]]
		if val == 0 {
			continue
		}
		for e := f.lptr[k]; e < f.lptr[k+1]; e++ {
			v[f.lrow[e]] -= f.lval[e] * val
		}
	}
	// U solve (backward, scatter form), result per elimination step.
	x := f.scratch
	for k := m - 1; k >= 0; k-- {
		t := v[f.rowPiv[k]]
		if t != 0 {
			t /= f.udiag[k]
			for e := f.uptr[k]; e < f.uptr[k+1]; e++ {
				v[f.rowPiv[f.urow[e]]] -= f.uval[e] * t
			}
		}
		x[k] = t
	}
	// Permute steps back to basis positions.
	for k := 0; k < m; k++ {
		v[f.order[k]] = x[k]
	}
	// Apply the eta file in pivot order: B = B₀·E₁⋯E_k, so
	// x = E_k⁻¹·…·E₁⁻¹·B₀⁻¹·v.
	for i := range f.etas {
		e := &f.etas[i]
		pv := v[e.r]
		if pv == 0 {
			continue
		}
		pv /= e.piv
		for t, idx := range e.idx {
			v[idx] -= e.val[t] * pv
		}
		v[e.r] = pv
	}
}

// Btran solves Bᵀ·y = v in place: on input v is indexed by basis position
// (e.g. basic costs), on output it holds y indexed by row.
func (f *Factors) Btran(v []float64) {
	// Eta transposes in reverse pivot order.
	for i := len(f.etas) - 1; i >= 0; i-- {
		e := &f.etas[i]
		s := v[e.r]
		for t, idx := range e.idx {
			s -= e.val[t] * v[idx]
		}
		v[e.r] = s / e.piv
	}
	m := f.m
	// Column permutation, then Uᵀ solve (forward in elimination steps;
	// gather form over the stored U columns).
	z := f.scratch
	for k := 0; k < m; k++ {
		z[k] = v[f.order[k]]
	}
	for k := 0; k < m; k++ {
		s := z[k]
		for e := f.uptr[k]; e < f.uptr[k+1]; e++ {
			s -= f.uval[e] * z[f.urow[e]]
		}
		z[k] = s / f.udiag[k]
	}
	// Lᵀ solve (backward; rows referenced by an L column are pivotal at
	// later steps, whose y values are already final).
	for k := m - 1; k >= 0; k-- {
		s := z[k]
		for e := f.lptr[k]; e < f.lptr[k+1]; e++ {
			s -= f.lval[e] * v[f.lrow[e]]
		}
		v[f.rowPiv[k]] = s
	}
}

// Clone returns a Factors sharing the immutable base LU with f but owning
// its eta file and scratch space, so updates to either copy stay private.
// This is what makes a factorization cacheable across warm starts.
func (f *Factors) Clone() *Factors {
	out := *f
	out.etas = make([]eta, len(f.etas))
	copy(out.etas, f.etas) // eta payload slices are append-only: share them
	out.scratch = make([]float64, f.m)
	return &out
}
