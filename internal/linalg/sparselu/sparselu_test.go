package sparselu

import (
	"math"
	"math/rand"
	"testing"

	"tvnep/internal/linalg"
)

// randBasis builds a random sparse nonsingular m×m basis in column form
// (diagonal entries force nonsingularity, off-diagonal density ~den).
func randBasis(rng *rand.Rand, m int, den float64) ([][]int32, [][]float64) {
	colIdx := make([][]int32, m)
	colVal := make([][]float64, m)
	for p := 0; p < m; p++ {
		for r := 0; r < m; r++ {
			switch {
			case r == p:
				colIdx[p] = append(colIdx[p], int32(r))
				colVal[p] = append(colVal[p], 2+rng.Float64())
			case rng.Float64() < den:
				colIdx[p] = append(colIdx[p], int32(r))
				colVal[p] = append(colVal[p], rng.NormFloat64())
			}
		}
	}
	return colIdx, colVal
}

// toDense expands a column-form basis into a dense matrix.
func toDense(m int, colIdx [][]int32, colVal [][]float64) *linalg.Dense {
	d := linalg.NewDense(m, m)
	for p := 0; p < m; p++ {
		for k, r := range colIdx[p] {
			d.Set(int(r), p, colVal[p][k])
		}
	}
	return d
}

func maxDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestFtranBtranAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(40)
		colIdx, colVal := randBasis(rng, m, 0.15)
		f, err := Factorize(m, colIdx, colVal)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dense := toDense(m, colIdx, colVal)
		lu, err := linalg.Factorize(dense)
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		// FTRAN: B·x = b.
		b := make([]float64, m)
		for i := range b {
			if rng.Float64() < 0.5 {
				b[i] = rng.NormFloat64()
			}
		}
		x := append([]float64(nil), b...)
		f.Ftran(x)
		want := make([]float64, m)
		lu.Solve(b, want)
		if d := maxDiff(x, want); d > 1e-9 {
			t.Fatalf("trial %d: ftran differs from dense by %v", trial, d)
		}
		// BTRAN: Bᵀ·y = c ⇔ B·x = c on the transposed matrix.
		c := make([]float64, m)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		y := append([]float64(nil), c...)
		f.Btran(y)
		// Verify Bᵀ·y = c directly.
		chk := make([]float64, m)
		for p := 0; p < m; p++ {
			s := 0.0
			for k, r := range colIdx[p] {
				s += colVal[p][k] * y[r]
			}
			chk[p] = s
		}
		if d := maxDiff(chk, c); d > 1e-8 {
			t.Fatalf("trial %d: btran residual %v", trial, d)
		}
	}
}

func TestSingular(t *testing.T) {
	// Column 1 is empty → structurally singular.
	colIdx := [][]int32{{0}, nil}
	colVal := [][]float64{{1}, nil}
	if _, err := Factorize(2, colIdx, colVal); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	// Two identical columns → numerically singular.
	colIdx = [][]int32{{0, 1}, {0, 1}}
	colVal = [][]float64{{1, 2}, {1, 2}}
	if _, err := Factorize(2, colIdx, colVal); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestEmpty(t *testing.T) {
	f, err := Factorize(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Ftran(nil)
	f.Btran(nil)
}

func TestEtaUpdateMatchesRefactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.Intn(30)
		colIdx, colVal := randBasis(rng, m, 0.2)
		f, err := Factorize(m, colIdx, colVal)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Apply a handful of column replacements via eta updates, mirroring
		// them in the explicit column form.
		for rep := 0; rep < 5; rep++ {
			// Random replacement column (dense-ish so pivots stay safe).
			newIdx := []int32{}
			newVal := []float64{}
			for r := 0; r < m; r++ {
				v := rng.NormFloat64()
				if r == rep%m {
					v += 3 // keep the pivot position well-conditioned
				}
				if v != 0 {
					newIdx = append(newIdx, int32(r))
					newVal = append(newVal, v)
				}
			}
			// alpha = B⁻¹·a via the current factors.
			alpha := make([]float64, m)
			for k, r := range newIdx {
				alpha[r] = newVal[k]
			}
			f.Ftran(alpha)
			pos := rep % m
			if math.Abs(alpha[pos]) < 1e-6 {
				continue // unlucky pivot; skip this replacement
			}
			f.Update(alpha, pos)
			colIdx[pos], colVal[pos] = newIdx, newVal
		}
		// The eta-updated factors must agree with a fresh factorization of
		// the current basis.
		fresh, err := Factorize(m, colIdx, colVal)
		if err != nil {
			t.Fatalf("trial %d refactorize: %v", trial, err)
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1 := append([]float64(nil), b...)
		x2 := append([]float64(nil), b...)
		f.Ftran(x1)
		fresh.Ftran(x2)
		if d := maxDiff(x1, x2); d > 1e-6 {
			t.Fatalf("trial %d: eta ftran differs from refactorized by %v (etas=%d)", trial, d, f.NumEtas())
		}
		y1 := append([]float64(nil), b...)
		y2 := append([]float64(nil), b...)
		f.Btran(y1)
		fresh.Btran(y2)
		if d := maxDiff(y1, y2); d > 1e-6 {
			t.Fatalf("trial %d: eta btran differs from refactorized by %v", trial, d)
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := 12
	colIdx, colVal := randBasis(rng, m, 0.3)
	f, err := Factorize(m, colIdx, colVal)
	if err != nil {
		t.Fatal(err)
	}
	alpha := make([]float64, m)
	for i := range alpha {
		alpha[i] = rng.NormFloat64()
	}
	alpha[4] = 2
	f.Update(alpha, 4)

	clone := f.Clone()
	if clone.NumEtas() != 1 || clone.EtaNNZ() != f.EtaNNZ() {
		t.Fatalf("clone eta state: %d etas, nnz %d", clone.NumEtas(), clone.EtaNNZ())
	}
	// Updating the clone must not leak into the original, and vice versa.
	clone.Update(alpha, 5)
	f.Update(alpha, 6)
	if f.NumEtas() != 2 || clone.NumEtas() != 2 {
		t.Fatalf("eta counts after divergent updates: f=%d clone=%d", f.NumEtas(), clone.NumEtas())
	}
	b := make([]float64, m)
	b[0] = 1
	x1 := append([]float64(nil), b...)
	clone.Ftran(x1) // must not disturb f's scratch mid-use (separate buffers)
	x2 := append([]float64(nil), b...)
	f.Ftran(x2)
	if f.etas[1].r == clone.etas[1].r {
		t.Fatal("divergent etas alias")
	}
}

func TestDeterministicFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := 25
	colIdx, colVal := randBasis(rng, m, 0.2)
	f1, err1 := Factorize(m, colIdx, colVal)
	f2, err2 := Factorize(m, colIdx, colVal)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1 := append([]float64(nil), b...)
	x2 := append([]float64(nil), b...)
	f1.Ftran(x1)
	f2.Ftran(x2)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("nondeterministic ftran at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}
