package sparselu

import (
	"math/rand"
	"testing"
)

// borderedColumnsRight builds the explicit column form of [[B,C],[0,D]] from
// the base columns, border columns (over original rows) and diagonal.
func borderedColumnsRight(m, k int, colIdx [][]int32, colVal [][]float64,
	bIdx [][]int32, bVal [][]float64, diag []float64) ([][]int32, [][]float64) {
	mk := m + k
	outIdx := make([][]int32, mk)
	outVal := make([][]float64, mk)
	for p := 0; p < m; p++ {
		outIdx[p] = append(outIdx[p], colIdx[p]...)
		outVal[p] = append(outVal[p], colVal[p]...)
	}
	for i := 0; i < k; i++ {
		outIdx[m+i] = append(outIdx[m+i], bIdx[i]...)
		outVal[m+i] = append(outVal[m+i], bVal[i]...)
		outIdx[m+i] = append(outIdx[m+i], int32(m+i))
		outVal[m+i] = append(outVal[m+i], diag[i])
	}
	return outIdx, outVal
}

// randColBorder draws k sparse border columns over m original rows.
func randColBorder(rng *rand.Rand, m, k int) ([][]int32, [][]float64, []float64) {
	bIdx := make([][]int32, k)
	bVal := make([][]float64, k)
	diag := make([]float64, k)
	for i := 0; i < k; i++ {
		for r := 0; r < m; r++ {
			if rng.Float64() < 0.3 {
				bIdx[i] = append(bIdx[i], int32(r))
				bVal[i] = append(bVal[i], rng.NormFloat64())
			}
		}
		diag[i] = 1 // a column pivotal in its own appended row
	}
	return bIdx, bVal, diag
}

func TestExtendColumnMatchesFreshFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(30)
		k := 1 + rng.Intn(5)
		colIdx, colVal := randBasis(rng, m, 0.2)
		f, err := Factorize(m, colIdx, colVal)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Half the trials extend a factorization that already carries eta
		// updates (the mid-solve case: pivots happened since refactorization).
		if trial%2 == 1 {
			applyRandomUpdates(t, rng, f, m, colIdx, colVal, 4)
		}
		bIdx, bVal, diag := randColBorder(rng, m, k)
		g, err := f.ExtendColumn(k, bIdx, bVal, diag)
		if err != nil {
			t.Fatalf("trial %d: extend column: %v", trial, err)
		}
		if g.M() != m+k {
			t.Fatalf("trial %d: M() = %d, want %d", trial, g.M(), m+k)
		}
		fullIdx, fullVal := borderedColumnsRight(m, k, colIdx, colVal, bIdx, bVal, diag)
		checkAgainst(t, trial, g, m+k, fullIdx, fullVal, rng)

		// Updates must keep working on the extended factors.
		applyRandomUpdates(t, rng, g, m+k, fullIdx, fullVal, 3)
		checkAgainst(t, trial, g, m+k, fullIdx, fullVal, rng)

		// And a second column extension must stack on top of the first.
		bIdx2, bVal2, diag2 := randColBorder(rng, m+k, 2)
		g2, err := g.ExtendColumn(2, bIdx2, bVal2, diag2)
		if err != nil {
			t.Fatalf("trial %d: second extend column: %v", trial, err)
		}
		fullIdx2, fullVal2 := borderedColumnsRight(m+k, 2, fullIdx, fullVal, bIdx2, bVal2, diag2)
		checkAgainst(t, trial, g2, m+k+2, fullIdx2, fullVal2, rng)
	}
}

// TestExtendColumnAfterRowExtend interleaves the two bordered kernels: a row
// extension (Extend) followed by a column extension on the result, matching
// the cut-then-price restart order of the branch-and-bound engine's replay.
func TestExtendColumnAfterRowExtend(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(20)
		colIdx, colVal := randBasis(rng, m, 0.25)
		f, err := Factorize(m, colIdx, colVal)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rIdx, rVal, rDiag := randBorder(rng, m, 2)
		g, err := f.Extend(2, rIdx, rVal, rDiag)
		if err != nil {
			t.Fatalf("trial %d: extend: %v", trial, err)
		}
		fullIdx, fullVal := borderedColumns(m, 2, colIdx, colVal, rIdx, rVal, rDiag)

		cIdx, cVal, cDiag := randColBorder(rng, m+2, 1)
		h, err := g.ExtendColumn(1, cIdx, cVal, cDiag)
		if err != nil {
			t.Fatalf("trial %d: extend column: %v", trial, err)
		}
		fullIdx2, fullVal2 := borderedColumnsRight(m+2, 1, fullIdx, fullVal, cIdx, cVal, cDiag)
		checkAgainst(t, trial, h, m+3, fullIdx2, fullVal2, rng)
	}
}

func TestExtendColumnReceiverUnmodified(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := 12
	colIdx, colVal := randBasis(rng, m, 0.25)
	f, err := Factorize(m, colIdx, colVal)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	before := append([]float64(nil), b...)
	f.Ftran(before)

	bIdx, bVal, diag := randColBorder(rng, m, 3)
	if _, err := f.ExtendColumn(3, bIdx, bVal, diag); err != nil {
		t.Fatal(err)
	}
	after := append([]float64(nil), b...)
	f.Ftran(after)
	if d := maxDiff(before, after); d != 0 {
		t.Fatalf("receiver solve changed by %v after ExtendColumn", d)
	}
	if f.M() != m {
		t.Fatalf("receiver dimension changed to %d", f.M())
	}
}

func TestExtendColumnZeroDiagSingular(t *testing.T) {
	colIdx := [][]int32{{0}}
	colVal := [][]float64{{1}}
	f, err := Factorize(1, colIdx, colVal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ExtendColumn(1, [][]int32{{0}}, [][]float64{{1}}, []float64{0}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestExtendColumnEmptyBase(t *testing.T) {
	f, err := Factorize(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.ExtendColumn(2, [][]int32{nil, nil}, [][]float64{nil, nil}, []float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{3, -4}
	g.Ftran(v)
	if v[0] != 3 || v[1] != 4 {
		t.Fatalf("ftran on diag(1,-1) = %v, want [3 4]", v)
	}
}

// TestExtendColumnIntoAllocFree pins the //hot:path contract: with a warmed
// destination and workspace, ExtendColumnInto performs no allocations.
func TestExtendColumnIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	const m = 24
	colIdx, colVal := randBasis(rng, m, 0.25)
	f, err := Factorize(m, colIdx, colVal)
	if err != nil {
		t.Fatalf("factorize: %v", err)
	}
	bIdx, bVal, diag := randColBorder(rng, m, 2)
	dst := &Factors{}
	ws := NewWorkspace()
	// Warm the destination and workspace capacities.
	for i := 0; i < 2; i++ {
		if err := f.ExtendColumnInto(dst, ws, 2, bIdx, bVal, diag); err != nil {
			t.Fatalf("warmup extend column: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := f.ExtendColumnInto(dst, ws, 2, bIdx, bVal, diag); err != nil {
			t.Fatalf("extend column: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ExtendColumnInto with warmed destination allocates %v per call, want 0", allocs)
	}
}
