package sparselu

import (
	"math/rand"
	"testing"
)

// TestExtendLongChain grows one factorization through 60 bordered
// extensions — the lazy-cut hot-restart pattern taken to an extreme — using
// the same two-buffer ExtendInto ping-pong the simplex solver runs, and
// re-verifies FTRAN/BTRAN against a fresh factorization of the explicit
// bordered matrix after every step. Eta updates are replayed periodically so
// the chain also covers extending mid-solve factors (pivots taken since the
// last refactorization).
func TestExtendLongChain(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := 12
	colIdx, colVal := randBasis(rng, m, 0.25)
	cur, err := Factorize(m, colIdx, colVal)
	if err != nil {
		t.Fatalf("base factorization: %v", err)
	}
	spare := &Factors{}
	ws := NewWorkspace()
	const chain = 60
	for step := 0; step < chain; step++ {
		k := 1
		if step%7 == 3 {
			k = 2 // occasional multi-row batch, as cut separation appends them
		}
		bIdx, bVal, diag := randBorder(rng, m, k)
		if err := cur.ExtendInto(spare, ws, k, bIdx, bVal, diag); err != nil {
			t.Fatalf("step %d: extend: %v", step, err)
		}
		cur, spare = spare, cur
		colIdx, colVal = borderedColumns(m, k, colIdx, colVal, bIdx, bVal, diag)
		m += k
		if cur.M() != m {
			t.Fatalf("step %d: M() = %d, want %d", step, cur.M(), m)
		}
		checkAgainst(t, step, cur, m, colIdx, colVal, rng)
		if step%10 == 9 {
			applyRandomUpdates(t, rng, cur, m, colIdx, colVal, 3)
			checkAgainst(t, step, cur, m, colIdx, colVal, rng)
		}
	}
}

// TestExtendIntoAllocFree pins the hot-restart allocation contract: once the
// destination factors and workspace have been through one extension of the
// same shape, ExtendInto must not allocate — even when the source carries an
// eta file, which is the common mid-solve restart case.
func TestExtendIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const m = 24
	colIdx, colVal := randBasis(rng, m, 0.25)
	f, err := Factorize(m, colIdx, colVal)
	if err != nil {
		t.Fatalf("factorize: %v", err)
	}
	applyRandomUpdates(t, rng, f, m, colIdx, colVal, 3)
	bIdx, bVal, diag := randBorder(rng, m, 2)
	dst, ws := &Factors{}, NewWorkspace()
	if err := f.ExtendInto(dst, ws, 2, bIdx, bVal, diag); err != nil {
		t.Fatalf("warm-up extend: %v", err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := f.ExtendInto(dst, ws, 2, bIdx, bVal, diag); err != nil {
			t.Fatalf("extend: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ExtendInto with warmed destination allocates %v per call, want 0", allocs)
	}
}

// TestTranAllocFree pins the kernel allocation contract: FTRAN/BTRAN work
// entirely in caller and factor-owned scratch.
func TestTranAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const m = 32
	colIdx, colVal := randBasis(rng, m, 0.25)
	f, err := Factorize(m, colIdx, colVal)
	if err != nil {
		t.Fatalf("factorize: %v", err)
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	v := make([]float64, m)
	allocs := testing.AllocsPerRun(100, func() {
		copy(v, b)
		f.Ftran(v)
		f.Btran(v)
	})
	if allocs != 0 {
		t.Fatalf("Ftran+Btran allocate %v per call, want 0", allocs)
	}
}
