package sparselu

import "math"

// ExtendColumn returns the factorization of the bordered (m+k)×(m+k) basis
//
//	M = | B C |
//	    | 0 D |
//
// where B is the basis represented by f (base LU plus its eta file), C holds
// k border columns stated over B's original row indices, and D = diag(diag).
// This is the column-side mirror of Extend: where Extend grows a basis whose
// appended rows are covered by their own slacks (the cutting-plane restart),
// ExtendColumn grows a basis whose appended columns are pivotal in appended
// rows — the shape produced when a caller enters matched row/column pairs at
// once (a priced column taken basic in its convexity row's appended slack
// position). Plain column appends never change the basis dimension — the new
// columns enter nonbasic and the existing factors are adopted unchanged (see
// lp.Instance.AppendColumn) — so this kernel is only consulted for the
// matched-pair shape. Hot callers should hold a destination and Workspace and
// use ExtendColumnInto instead.
func (f *Factors) ExtendColumn(k int, borderIdx [][]int32, borderVal [][]float64, diag []float64) (*Factors, error) {
	g := &Factors{}
	if err := f.ExtendColumnInto(g, NewWorkspace(), k, borderIdx, borderVal, diag); err != nil {
		return nil, err
	}
	return g, nil
}

// ExtendColumnInto factorizes the bordered basis into dst (see ExtendColumn),
// reusing dst's storage when capacity allows. dst must be distinct from f and
// must not be shared with any other live Factors. The receiver is not
// modified and shares nothing with the result.
//
// Writing B = B₀·E (base factors times eta file), the bordered basis factors
// as M = [B₀ C; 0 D]·blockdiag(E, I): the eta file carries over verbatim and
// — unlike Extend, whose bottom-left border must be pushed through the eta
// inverses — the top-right border only meets the base factors. Each border
// column is pushed through the base L solve (the forward scatter loop of
// Ftran); the surviving entries, reindexed from original rows to elimination
// steps, are exactly the new U column L₀⁻¹·c of step m+i. The appended rows
// are untouched by old L columns, so each new column pivots on diag[i] in its
// own appended row: udiag[m+i] = diag[i] with an empty L column — the exact
// transpose of Extend's empty-U/border-in-L layout. One L solve per border
// column, O(k·(m + nnz(L))) total — independent of B's fill-in.
//
// borderIdx[i] lists original row indices (0..m-1) and may repeat (entries
// are accumulated). diag entries must be nonzero; the extension itself is
// never singular when they are (det M = det B · Π diag[i]).
//
//hot:path
func (f *Factors) ExtendColumnInto(dst *Factors, ws *Workspace, k int, borderIdx [][]int32, borderVal [][]float64, diag []float64) error {
	m := f.m
	mk := m + k
	for i := 0; i < k; i++ {
		if math.Abs(diag[i]) < singTol {
			return ErrSingular
		}
	}

	// Per border column: the base L solve into the row-indexed accumulator,
	// then gather per elimination step into us[i·m:(i+1)·m] (every old row is
	// pivotal in B₀, so the whole solved column lands in U).
	ws.grow(mk)
	ws.xbuf = growF64(ws.xbuf, k*m)
	us := ws.xbuf
	w := ws.w[:m]
	for r := range w {
		w[r] = 0
	}
	for i := 0; i < k; i++ {
		for e, r := range borderIdx[i] {
			w[r] += borderVal[i][e]
		}
		for t := 0; t < m; t++ {
			val := w[f.rowPiv[t]]
			if val == 0 {
				continue
			}
			for e := f.lptr[t]; e < f.lptr[t+1]; e++ {
				w[f.lrow[e]] -= f.lval[e] * val
			}
		}
		u := us[i*m : (i+1)*m]
		for t := 0; t < m; t++ {
			u[t] = w[f.rowPiv[t]]
			w[f.rowPiv[t]] = 0
		}
	}

	g := dst
	g.m = mk
	g.order = append(growI32(g.order, mk)[:0], f.order...)
	g.rowPiv = append(growI32(g.rowPiv, mk)[:0], f.rowPiv...)
	g.udiag = append(growF64(g.udiag, mk)[:0], f.udiag...)
	g.order = g.order[:mk]
	g.rowPiv = g.rowPiv[:mk]
	g.udiag = g.udiag[:mk]
	for i := 0; i < k; i++ {
		g.order[m+i] = int32(m + i)
		g.rowPiv[m+i] = int32(m + i)
		g.udiag[m+i] = diag[i]
	}

	// L carries over verbatim, with empty columns for the new steps.
	g.lptr = growI32(g.lptr, mk+1)
	g.lrow = append(growI32(g.lrow, len(f.lrow))[:0], f.lrow...)
	g.lval = append(growF64(g.lval, len(f.lval))[:0], f.lval...)
	copy(g.lptr, f.lptr[:m+1])
	for t := m; t < mk; t++ {
		g.lptr[t+1] = g.lptr[t]
	}

	// U gains one non-empty column per border column (row indices are the
	// earlier step numbers, dropTol-filtered like the base factorization).
	extra := 0
	for _, v := range us[:k*m] {
		if math.Abs(v) > dropTol {
			extra++
		}
	}
	nu := len(f.urow) + extra
	g.uptr = growI32(g.uptr, mk+1)
	g.urow = growI32(g.urow, nu)
	g.uval = growF64(g.uval, nu)
	copy(g.uptr, f.uptr[:m+1])
	copy(g.urow, f.urow)
	copy(g.uval, f.uval)
	wrt := len(f.urow)
	for i := 0; i < k; i++ {
		u := us[i*m : (i+1)*m]
		for t := 0; t < m; t++ {
			if v := u[t]; math.Abs(v) > dropTol {
				g.urow[wrt] = int32(t)
				g.uval[wrt] = v
				wrt++
			}
		}
		g.uptr[m+1+i] = int32(wrt)
	}

	// The eta file carries over verbatim (it acts on the old positions).
	if cap(g.etas) < len(f.etas) {
		g.etas = make([]eta, len(f.etas))
	} else {
		g.etas = g.etas[:len(f.etas)]
	}
	copy(g.etas, f.etas)
	g.etaIdx = append(growI32(g.etaIdx, len(f.etaIdx))[:0], f.etaIdx...)
	g.etaVal = append(growF64(g.etaVal, len(f.etaVal))[:0], f.etaVal...)
	g.etaNNZ = f.etaNNZ
	g.scratch = growF64(g.scratch, mk)
	g.buildMirrors(ws)
	return nil
}
