package sparselu

import "math"

// Extend returns the factorization of the bordered (m+k)×(m+k) basis
//
//	M = | B 0 |
//	    | C D |
//
// where B is the basis represented by f (base LU plus its eta file), C holds
// k border rows stated over B's basis positions, and D = diag(diag). This is
// the cutting-plane hot-restart kernel: when rows are appended to a solved
// LP, each new row's slack enters the basis, so the new basis is exactly M
// and can be factorized by extension instead of from scratch.
//
// Each appended column (position m+i) is a unit column pivotal in its own
// appended row, so it contributes an empty elimination step with diagonal
// diag[i]. The border C enters the L factor: the new rows' multipliers
// against the old elimination steps are X = ĉ·U⁻¹ per border row, where
// ĉ is the row pushed through the eta inverses (C·E⁻¹) and reindexed from
// basis positions to elimination steps. One triangular solve per border row,
// O(k·(m + nnz(U) + nnz(etas))) total — independent of B's fill-in.
//
// borderIdx[i] lists basis positions (0..m-1) and may repeat (entries are
// accumulated). diag entries must be nonzero; the extension itself is never
// singular when they are (det M = det B · Π diag[i]). The receiver is not
// modified; the result shares the receiver's immutable U arrays and eta
// payloads.
func (f *Factors) Extend(k int, borderIdx [][]int32, borderVal [][]float64, diag []float64) (*Factors, error) {
	m := f.m
	mk := m + k
	for i := 0; i < k; i++ {
		if math.Abs(diag[i]) < singTol {
			return nil, ErrSingular
		}
	}

	// Per border row: multipliers X[i] over the old elimination steps.
	xs := make([][]float64, k)
	c := make([]float64, m) // position-indexed workspace
	for i := 0; i < k; i++ {
		for e, p := range borderIdx[i] {
			c[p] += borderVal[i][e]
		}
		// c ← c·E⁻¹: the eta-transpose loop of Btran, because
		// (c·E⁻¹)ᵀ = E⁻ᵀ·cᵀ.
		for ei := len(f.etas) - 1; ei >= 0; ei-- {
			e := &f.etas[ei]
			s := c[e.r]
			for t, idx := range e.idx {
				s -= e.val[t] * c[idx]
			}
			c[e.r] = s / e.piv
		}
		// Solve x·U = ĉ over steps (ĉ[t] = c[order[t]]): the forward Uᵀ
		// recurrence of Btran.
		x := make([]float64, m)
		for t := 0; t < m; t++ {
			s := c[f.order[t]]
			for e := f.uptr[t]; e < f.uptr[t+1]; e++ {
				s -= f.uval[e] * x[f.urow[e]]
			}
			x[t] = s / f.udiag[t]
		}
		xs[i] = x
		for t := range c {
			c[t] = 0
		}
	}

	g := &Factors{
		m:      mk,
		order:  make([]int32, mk),
		rowPiv: make([]int32, mk),
		udiag:  make([]float64, mk),
		uptr:   make([]int32, mk+1),
		urow:   f.urow, // immutable after Factorize: share
		uval:   f.uval,
		etaNNZ: f.etaNNZ,
	}
	copy(g.order, f.order)
	copy(g.rowPiv, f.rowPiv)
	copy(g.udiag, f.udiag)
	copy(g.uptr, f.uptr)
	for i := 0; i < k; i++ {
		g.order[m+i] = int32(m + i)
		g.rowPiv[m+i] = int32(m + i)
		g.udiag[m+i] = diag[i]
		g.uptr[m+i+1] = f.uptr[m] // empty U columns for the new steps
	}

	// Rebuild L, interleaving each step's border multipliers (row indices
	// m+i) behind its original entries.
	extra := 0
	for i := 0; i < k; i++ {
		for _, v := range xs[i] {
			if math.Abs(v) > dropTol {
				extra++
			}
		}
	}
	g.lptr = make([]int32, mk+1)
	g.lrow = make([]int32, 0, len(f.lrow)+extra)
	g.lval = make([]float64, 0, len(f.lval)+extra)
	for t := 0; t < m; t++ {
		g.lrow = append(g.lrow, f.lrow[f.lptr[t]:f.lptr[t+1]]...)
		g.lval = append(g.lval, f.lval[f.lptr[t]:f.lptr[t+1]]...)
		for i := 0; i < k; i++ {
			if v := xs[i][t]; math.Abs(v) > dropTol {
				g.lrow = append(g.lrow, int32(m+i))
				g.lval = append(g.lval, v)
			}
		}
		g.lptr[t+1] = int32(len(g.lrow))
	}
	for t := m; t < mk; t++ {
		g.lptr[t+1] = g.lptr[t] // empty L columns for the new steps
	}

	// Eta payload slices are append-only: share them, own the headers.
	g.etas = make([]eta, len(f.etas))
	copy(g.etas, f.etas)
	g.scratch = make([]float64, mk)
	return g, nil
}
