package sparselu

import "math"

// Extend returns the factorization of the bordered (m+k)×(m+k) basis
//
//	M = | B 0 |
//	    | C D |
//
// where B is the basis represented by f (base LU plus its eta file), C holds
// k border rows stated over B's basis positions, and D = diag(diag). This is
// the cutting-plane hot-restart kernel: when rows are appended to a solved
// LP, each new row's slack enters the basis, so the new basis is exactly M
// and can be factorized by extension instead of from scratch. Hot callers
// should hold a destination and Workspace and use ExtendInto instead.
func (f *Factors) Extend(k int, borderIdx [][]int32, borderVal [][]float64, diag []float64) (*Factors, error) {
	g := &Factors{}
	if err := f.ExtendInto(g, NewWorkspace(), k, borderIdx, borderVal, diag); err != nil {
		return nil, err
	}
	return g, nil
}

// ExtendInto factorizes the bordered basis into dst (see Extend), reusing
// dst's storage when capacity allows. dst must be distinct from f and must
// not be shared with any other live Factors. The receiver is not modified
// and shares nothing with the result.
//
// Each appended column (position m+i) is a unit column pivotal in its own
// appended row, so it contributes an empty elimination step with diagonal
// diag[i]. The border C enters the L factor: the new rows' multipliers
// against the old elimination steps are X = ĉ·U⁻¹ per border row, where
// ĉ is the row pushed through the eta inverses (C·E⁻¹) and reindexed from
// basis positions to elimination steps. One triangular solve per border row,
// O(k·(m + nnz(U) + nnz(etas))) total — independent of B's fill-in.
//
// borderIdx[i] lists basis positions (0..m-1) and may repeat (entries are
// accumulated). diag entries must be nonzero; the extension itself is never
// singular when they are (det M = det B · Π diag[i]).
//
//hot:path
func (f *Factors) ExtendInto(dst *Factors, ws *Workspace, k int, borderIdx [][]int32, borderVal [][]float64, diag []float64) error {
	m := f.m
	mk := m + k
	for i := 0; i < k; i++ {
		if math.Abs(diag[i]) < singTol {
			return ErrSingular
		}
	}

	// Per border row: multipliers xs[i·m:(i+1)·m] over the old elimination
	// steps, staged in the workspace (c doubles as the position-indexed
	// accumulator via ws.w).
	ws.grow(mk)
	ws.xbuf = growF64(ws.xbuf, k*m)
	xs := ws.xbuf
	c := ws.w[:m]
	for t := range c {
		c[t] = 0
	}
	for i := 0; i < k; i++ {
		for e, p := range borderIdx[i] {
			c[p] += borderVal[i][e]
		}
		// c ← c·E⁻¹: the eta-transpose loop of Btran, because
		// (c·E⁻¹)ᵀ = E⁻ᵀ·cᵀ.
		for ei := len(f.etas) - 1; ei >= 0; ei-- {
			e := &f.etas[ei]
			s := c[e.r]
			idx := f.etaIdx[e.off : e.off+e.n]
			val := f.etaVal[e.off : e.off+e.n]
			for t, ix := range idx {
				s -= val[t] * c[ix]
			}
			c[e.r] = s / e.piv
		}
		// Solve x·U = ĉ over steps (ĉ[t] = c[order[t]]): the forward Uᵀ
		// recurrence of Btran.
		x := xs[i*m : (i+1)*m]
		for t := 0; t < m; t++ {
			s := c[f.order[t]]
			for e := f.uptr[t]; e < f.uptr[t+1]; e++ {
				s -= f.uval[e] * x[f.urow[e]]
			}
			x[t] = s / f.udiag[t]
		}
		for t := range c {
			c[t] = 0
		}
	}

	g := dst
	g.m = mk
	g.order = append(growI32(g.order, mk)[:0], f.order...)
	g.rowPiv = append(growI32(g.rowPiv, mk)[:0], f.rowPiv...)
	g.udiag = append(growF64(g.udiag, mk)[:0], f.udiag...)
	g.uptr = append(growI32(g.uptr, mk+1)[:0], f.uptr...)
	g.urow = append(growI32(g.urow, len(f.urow))[:0], f.urow...)
	g.uval = append(growF64(g.uval, len(f.uval))[:0], f.uval...)
	g.order = g.order[:mk]
	g.rowPiv = g.rowPiv[:mk]
	g.udiag = g.udiag[:mk]
	g.uptr = g.uptr[:mk+1]
	for i := 0; i < k; i++ {
		g.order[m+i] = int32(m + i)
		g.rowPiv[m+i] = int32(m + i)
		g.udiag[m+i] = diag[i]
		g.uptr[m+1+i] = f.uptr[m] // empty U columns for the new steps
	}

	// Rebuild L, interleaving each step's border multipliers (row indices
	// m+i) behind its original entries.
	extra := 0
	for _, v := range xs[:k*m] {
		if math.Abs(v) > dropTol {
			extra++
		}
	}
	nl := len(f.lrow) + extra
	g.lptr = growI32(g.lptr, mk+1)
	g.lrow = growI32(g.lrow, nl)
	g.lval = growF64(g.lval, nl)
	g.lptr[0] = 0
	w := 0
	for t := 0; t < m; t++ {
		lo, hi := f.lptr[t], f.lptr[t+1]
		copy(g.lrow[w:], f.lrow[lo:hi])
		copy(g.lval[w:], f.lval[lo:hi])
		w += int(hi - lo)
		for i := 0; i < k; i++ {
			if v := xs[i*m+t]; math.Abs(v) > dropTol {
				g.lrow[w] = int32(m + i)
				g.lval[w] = v
				w++
			}
		}
		g.lptr[t+1] = int32(w)
	}
	for t := m; t < mk; t++ {
		g.lptr[t+1] = g.lptr[t] // empty L columns for the new steps
	}

	// The eta file carries over verbatim (it acts on the old positions).
	if cap(g.etas) < len(f.etas) {
		g.etas = make([]eta, len(f.etas))
	} else {
		g.etas = g.etas[:len(f.etas)]
	}
	copy(g.etas, f.etas)
	g.etaIdx = append(growI32(g.etaIdx, len(f.etaIdx))[:0], f.etaIdx...)
	g.etaVal = append(growF64(g.etaVal, len(f.etaVal))[:0], f.etaVal...)
	g.etaNNZ = f.etaNNZ
	g.scratch = growF64(g.scratch, mk)
	g.buildMirrors(ws)
	return nil
}
