package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(4)[%d,%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := NewDense(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := make([]float64, 2)
	m.MulVec([]float64{1, 1, 1}, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", y)
	}
	yt := make([]float64, 3)
	m.MulVecTrans([]float64{1, 1}, yt)
	if yt[0] != 5 || yt[1] != 7 || yt[2] != 9 {
		t.Fatalf("MulVecTrans = %v, want [5 7 9]", yt)
	}
}

func TestLUSolveKnown(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10 → x = 1, y = 3
	a := NewDense(2, 2)
	copy(a.Data, []float64{2, 1, 1, 3})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve([]float64{5, 10}, x)
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
	if !almostEqual(f.Det(), 5, 1e-12) {
		t.Fatalf("Det = %v, want 5", f.Det())
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	copy(a.Data, []float64{1, 2, 2, 4})
	if _, err := Factorize(a); err != ErrSingular {
		t.Fatalf("Factorize singular = %v, want ErrSingular", err)
	}
}

func TestFactorizeNonSquare(t *testing.T) {
	if _, err := Factorize(NewDense(2, 3)); err == nil {
		t.Fatal("Factorize(2x3) succeeded, want error")
	}
}

func randomMatrix(rng *rand.Rand, n int) *Dense {
	m := NewDense(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	// Diagonal dominance guarantees non-singularity.
	for i := 0; i < n; i++ {
		m.Data[i*n+i] += float64(n) * 2
	}
	return m
}

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		a := randomMatrix(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(want, b)
		f, err := Factorize(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := make([]float64, n)
		f.Solve(b, got)
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-8) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestInverseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(15)
		a := randomMatrix(rng, n)
		inv, err := Invert(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// a·inv should be identity.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += a.At(i, k) * inv.At(k, j)
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEqual(s, want, 1e-8) {
					t.Fatalf("trial %d: (A·A⁻¹)[%d,%d] = %v, want %v", trial, i, j, s, want)
				}
			}
		}
	}
}

func TestDotAxpyScale(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v, want [7 9]", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("Scale = %v, want [3.5 4.5]", y)
	}
	if NormInf([]float64{-3, 2}) != 3 {
		t.Fatalf("NormInf wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Identity(3)
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

// Property: for random diagonally dominant systems, Solve(A, A·x) == x.
func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randomMatrix(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*10 - 5
		}
		b := make([]float64, n)
		a.MulVec(x, b)
		lu, err := Factorize(a)
		if err != nil {
			return false
		}
		got := make([]float64, n)
		lu.Solve(b, got)
		for i := range x {
			if !almostEqual(got[i], x[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: determinant of permuted identity is ±1.
func TestQuickDetIdentity(t *testing.T) {
	f := func(n uint8) bool {
		size := int(n%8) + 1
		lu, err := Factorize(Identity(size))
		if err != nil {
			return false
		}
		return almostEqual(lu.Det(), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
